// Package collectors models public BGP route collectors (RouteViews / RIPE
// RIS): a set of peer ASes whose best-route changes are recorded as
// timestamped update streams. The paper's efficacy and convergence
// experiments (§5.1, §5.2, Fig. 6) are computed from exactly this view —
// which ASes were routing through a poisoned AS, whether they found
// alternates, how many updates they emitted, and when they went quiet.
package collectors

import (
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// Entry is one recorded update from a collector peer: the peer's new best
// path for the prefix (nil for a withdrawal/loss).
type Entry struct {
	At   time.Duration
	Path topo.Path
}

type key struct {
	peer   topo.ASN
	prefix netip.Prefix
}

// Collector records update streams from its peers. Construct with New; it
// chains onto the engine's OnBestChange hook, preserving any existing hook.
type Collector struct {
	peers   map[topo.ASN]bool
	streams map[key][]Entry

	entriesRecorded *obs.Counter
}

// Instrument registers the collector's metrics with reg. A nil registry
// leaves the collector uninstrumented.
func (c *Collector) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_collectors_entries_recorded_total",
		"best-route changes recorded from collector peers")
	c.entriesRecorded = reg.Counter("lifeguard_collectors_entries_recorded_total")
}

// New attaches a collector to the engine with the given initial peers.
func New(e *bgp.Engine, peers ...topo.ASN) *Collector {
	c := &Collector{
		peers:   make(map[topo.ASN]bool),
		streams: make(map[key][]Entry),
	}
	for _, p := range peers {
		c.peers[p] = true
	}
	prev := e.OnBestChange
	e.OnBestChange = func(bc bgp.BestChange) {
		if prev != nil {
			prev(bc)
		}
		c.observe(bc)
	}
	return c
}

// AddPeer starts recording an additional peer AS.
func (c *Collector) AddPeer(asn topo.ASN) { c.peers[asn] = true }

// Peers returns the peer ASNs in ascending order.
func (c *Collector) Peers() []topo.ASN {
	out := make([]topo.ASN, 0, len(c.peers))
	for p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *Collector) observe(bc bgp.BestChange) {
	if !c.peers[bc.AS] {
		return
	}
	k := key{peer: bc.AS, prefix: bc.Prefix}
	c.streams[k] = append(c.streams[k], Entry{At: bc.At, Path: bc.Path})
	c.entriesRecorded.Inc()
}

// RecordedPrefixes returns every prefix any peer has ever emitted an update
// for, in sorted order. This is the hijack detector's iteration domain: a
// sub-prefix hijack shows up as a *new* prefix in the collector streams, so
// the detector cannot work from a fixed prefix list.
func (c *Collector) RecordedPrefixes() []netip.Prefix {
	seen := make(map[netip.Prefix]bool)
	for k := range c.streams {
		seen[k.prefix] = true
	}
	out := make([]netip.Prefix, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr() != out[j].Addr() {
			return out[i].Addr().Less(out[j].Addr())
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}

// Updates returns the full update stream from peer for prefix.
func (c *Collector) Updates(peer topo.ASN, prefix netip.Prefix) []Entry {
	return c.streams[key{peer: peer, prefix: prefix}]
}

// UpdatesSince returns the updates from peer for prefix at or after t.
func (c *Collector) UpdatesSince(peer topo.ASN, prefix netip.Prefix, t time.Duration) []Entry {
	all := c.Updates(peer, prefix)
	i := sort.Search(len(all), func(i int) bool { return all[i].At >= t })
	return all[i:]
}

// CurrentPath returns peer's latest recorded path for prefix (nil if the
// peer currently has no route or was never recorded).
func (c *Collector) CurrentPath(peer topo.ASN, prefix netip.Prefix) topo.Path {
	all := c.Updates(peer, prefix)
	if len(all) == 0 {
		return nil
	}
	return all[len(all)-1].Path
}

// HarvestASes returns every AS appearing on any peer's current path to
// prefix, excluding the origin itself — the §5 procedure for choosing which
// ASes to poison.
func (c *Collector) HarvestASes(prefix netip.Prefix, origin topo.ASN) []topo.ASN {
	seen := make(map[topo.ASN]bool)
	for p := range c.peers {
		for _, asn := range c.CurrentPath(p, prefix) {
			if asn != origin {
				seen[asn] = true
			}
		}
	}
	out := make([]topo.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerConvergence summarizes one peer's behaviour following an announcement
// made at some reference time.
type PeerConvergence struct {
	Peer topo.ASN
	// Updated is false when the peer emitted nothing (it never saw the
	// change — e.g. filtered upstream).
	Updated bool
	// First and Last bound the peer's update burst.
	First, Last time.Duration
	// NumUpdates counts updates in the burst; 1 means the peer converged
	// in a single step (no path exploration).
	NumUpdates int
	// FinalPath is the stable path after the burst (nil = lost route).
	FinalPath topo.Path
	// WasOnPath reports whether the peer's path immediately before the
	// reference time traversed the AS given to ConvergenceReport.
	WasOnPath bool
}

// SettleTime returns how long after the announcement the peer kept
// updating: Last - since.
func (pc *PeerConvergence) SettleTime(since time.Duration) time.Duration {
	if !pc.Updated {
		return 0
	}
	return pc.Last - since
}

// ConvergenceReport analyzes every peer's update stream for prefix after an
// announcement at "since". through identifies the poisoned AS (0 to skip
// WasOnPath classification).
func (c *Collector) ConvergenceReport(prefix netip.Prefix, since time.Duration, through topo.ASN) []PeerConvergence {
	var out []PeerConvergence
	for _, peer := range c.Peers() {
		all := c.Updates(peer, prefix)
		i := sort.Search(len(all), func(i int) bool { return all[i].At >= since })
		pc := PeerConvergence{Peer: peer}
		if i > 0 {
			prior := all[i-1].Path
			pc.WasOnPath = through != 0 && prior.Contains(through) && nextHopThrough(prior, through)
		}
		burst := all[i:]
		if len(burst) > 0 {
			pc.Updated = true
			pc.First = burst[0].At
			pc.Last = burst[len(burst)-1].At
			pc.NumUpdates = len(burst)
			pc.FinalPath = burst[len(burst)-1].Path
		} else if i > 0 {
			pc.FinalPath = all[i-1].Path
		}
		out = append(out, pc)
	}
	return out
}

// nextHopThrough reports whether the path actually forwards through asn.
// The origin's announcement pattern (prepends and poison tokens) forms the
// path's suffix starting at the first occurrence of the origin ASN — only
// the origin can insert its own ASN — so asn is a transit hop iff it
// appears before that point.
func nextHopThrough(p topo.Path, asn topo.ASN) bool {
	if len(p) == 0 {
		return false
	}
	origin := p[len(p)-1]
	for _, a := range p {
		if a == origin {
			return false
		}
		if a == asn {
			return true
		}
	}
	return false
}

// GlobalConvergenceTime returns the duration from the first to the last
// update any peer emitted for prefix at or after since, and false when no
// peer updated.
func (c *Collector) GlobalConvergenceTime(prefix netip.Prefix, since time.Duration) (time.Duration, bool) {
	first, last := time.Duration(-1), time.Duration(-1)
	for p := range c.peers {
		for _, e := range c.UpdatesSince(p, prefix, since) {
			if first < 0 || e.At < first {
				first = e.At
			}
			if e.At > last {
				last = e.At
			}
		}
	}
	if first < 0 {
		return 0, false
	}
	return last - first, true
}
