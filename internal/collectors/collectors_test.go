package collectors

import (
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func TestRecordsUpdateStreams(t *testing.T) {
	n := nettest.Fig2(t)
	// Attach after initial convergence so streams start clean.
	c := New(n.Eng, nettest.E, nettest.F)
	prod := topo.ProductionPrefix(nettest.O)
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.O, nettest.O}})
	n.Converge(t)
	if got := c.CurrentPath(nettest.E, prod); got == nil || got[0] != nettest.A {
		t.Fatalf("E current path = %v, want via A", got)
	}
	if len(c.Updates(nettest.E, prod)) == 0 {
		t.Fatal("no updates recorded for E")
	}
	// Non-peer ASes are not recorded.
	if got := c.Updates(nettest.B, prod); got != nil {
		t.Fatalf("B is not a peer but has updates: %v", got)
	}
}

func TestHarvestASes(t *testing.T) {
	n := nettest.Fig2(t)
	c := New(n.Eng, nettest.E, nettest.F)
	prod := topo.ProductionPrefix(nettest.O)
	n.Eng.Originate(nettest.O, prod)
	n.Converge(t)
	got := c.HarvestASes(prod, nettest.O)
	// E's path: A B O; F's path: A B O. Harvest = {A, B}.
	want := []topo.ASN{nettest.B, nettest.A}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("harvest = %v, want %v", got, want)
	}
}

func TestConvergenceReportClassifiesPeers(t *testing.T) {
	n := nettest.Fig2(t)
	c := New(n.Eng, nettest.E, nettest.C)
	prod := topo.ProductionPrefix(nettest.O)
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.O, nettest.O}})
	n.Converge(t)
	since := n.Clk.Now()
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.A, nettest.O}})
	n.Converge(t)
	rep := c.ConvergenceReport(prod, since, nettest.A)
	byPeer := map[topo.ASN]PeerConvergence{}
	for _, pc := range rep {
		byPeer[pc.Peer] = pc
	}
	e := byPeer[nettest.E]
	if !e.WasOnPath {
		t.Fatalf("E was routing via A pre-poison: %+v", e)
	}
	if !e.Updated || e.FinalPath == nil {
		t.Fatalf("E should have found an alternate: %+v", e)
	}
	if e.FinalPath[0] != nettest.D {
		t.Fatalf("E final path = %v, want via D", e.FinalPath)
	}
	cc := byPeer[nettest.C]
	if cc.WasOnPath {
		t.Fatalf("C was not routing via A (its path is B O): %+v", cc)
	}
	// C's path B-O-A-O changes textually (poison token) but stays via B:
	// it must settle with a single update and its final path via B.
	if cc.NumUpdates != 1 {
		t.Fatalf("unaffected C made %d updates, want 1 (prepend smoothing)", cc.NumUpdates)
	}
	if cc.FinalPath[0] != nettest.B {
		t.Fatalf("C final path = %v", cc.FinalPath)
	}
	if e.SettleTime(since) <= 0 {
		t.Fatal("E settle time should be positive")
	}
}

func TestGlobalConvergenceTime(t *testing.T) {
	n := nettest.Fig2(t)
	c := New(n.Eng, nettest.E, nettest.C, nettest.F)
	prod := topo.ProductionPrefix(nettest.O)
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.O, nettest.O}})
	n.Converge(t)
	since := n.Clk.Now()
	if _, ok := c.GlobalConvergenceTime(prod, since); ok {
		t.Fatal("no updates since yet")
	}
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.A, nettest.O}})
	n.Converge(t)
	d, ok := c.GlobalConvergenceTime(prod, since)
	if !ok {
		t.Fatal("expected updates")
	}
	if d < 0 || d.Minutes() > 10 {
		t.Fatalf("global convergence = %v", d)
	}
}

func TestWithdrawalRecordedAsNilPath(t *testing.T) {
	n := nettest.Fig2(t)
	c := New(n.Eng, nettest.F)
	prod := topo.ProductionPrefix(nettest.O)
	n.Eng.Originate(nettest.O, prod)
	n.Converge(t)
	since := n.Clk.Now()
	// Poisoning A cuts captive F off entirely.
	n.Eng.Announce(nettest.O, prod, bgp.OriginConfig{Pattern: topo.Path{nettest.O, nettest.A, nettest.O}})
	n.Converge(t)
	if got := c.CurrentPath(nettest.F, prod); got != nil {
		t.Fatalf("F should have lost its route, got %v", got)
	}
	rep := c.ConvergenceReport(prod, since, nettest.A)
	if len(rep) != 1 || !rep[0].Updated || rep[0].FinalPath != nil {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNextHopThrough(t *testing.T) {
	cases := []struct {
		path topo.Path
		asn  topo.ASN
		want bool
	}{
		{topo.Path{30, 20, 10}, 20, true},              // transit hop
		{topo.Path{20, 10, 30, 10}, 30, false},         // poison token only
		{topo.Path{30, 20, 10, 10, 10}, 20, true},      // prepended origin
		{topo.Path{10, 30, 10}, 30, false},             // direct poisoned
		{nil, 20, false},                               // empty
		{topo.Path{40, 30, 20, 10, 50, 10}, 50, false}, // poison not transit
	}
	for _, c := range cases {
		if got := nextHopThrough(c.path, c.asn); got != c.want {
			t.Errorf("nextHopThrough(%v, %d) = %v, want %v", c.path, c.asn, got, c.want)
		}
	}
}

func TestAddPeerAndPeersSorted(t *testing.T) {
	n := nettest.Fig2(t)
	c := New(n.Eng, nettest.F, nettest.C)
	c.AddPeer(nettest.E)
	got := c.Peers()
	if len(got) != 3 || got[0] != nettest.C || got[1] != nettest.E || got[2] != nettest.F {
		t.Fatalf("Peers = %v", got)
	}
}
