// Package nettest provides canonical simulated internetworks used by tests
// across the repository: the Fig. 2 poisoning topology and the Fig. 4
// isolation topology from the paper, fully converged with routers, BGP
// state, a data plane, and a prober.
package nettest

import (
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Net bundles one ready-to-use simulated internetwork.
type Net struct {
	Top    *topo.Topology
	Clk    *simclock.Scheduler
	Eng    *bgp.Engine
	Plane  *dataplane.Plane
	Prober *probe.Prober
}

// Hub returns the hub (first) router of asn.
func (n *Net) Hub(asn topo.ASN) topo.RouterID { return n.Top.AS(asn).Routers[0] }

// Converge drains the control plane or fails the test.
func (n *Net) Converge(tb testing.TB) {
	tb.Helper()
	if !n.Eng.Converge(5_000_000) {
		tb.Fatal("nettest: BGP did not converge")
	}
}

// FromTopology assembles a Net over a caller-built topology: BGP engine
// with every AS's block originated and converged, data plane, and prober.
func FromTopology(tb testing.TB, top *topo.Topology, seed int64) *Net {
	tb.Helper()
	return assemble(tb, top, seed)
}

// assemble builds engine, plane and prober over a finished topology and
// originates every AS's block.
func assemble(tb testing.TB, top *topo.Topology, seed int64) *Net {
	tb.Helper()
	clk := simclock.New()
	eng := bgp.New(top, clk, bgp.Config{Seed: seed})
	for _, asn := range top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	pl := dataplane.New(top, eng)
	n := &Net{
		Top: top, Clk: clk, Eng: eng, Plane: pl,
		Prober: probe.New(top, pl, clk, probe.Config{}),
	}
	n.Converge(tb)
	return n
}

// Fig. 2 cast (see the paper): O originates; poisoning A reroutes E and cuts
// off captive F.
const (
	O topo.ASN = 10
	B topo.ASN = 20
	A topo.ASN = 30
	C topo.ASN = 40
	D topo.ASN = 50
	E topo.ASN = 60
	F topo.ASN = 70
)

// Fig2 builds the routerful version of the paper's Fig. 2 topology:
//
//	O cust-of B; B cust-of A,C; C cust-of D; A,D cust-of E; F cust-of A.
//
// Pre-poison, E routes to O via A; post-poison via D-C-B. F is captive
// behind A.
func Fig2(tb testing.TB) *Net {
	tb.Helper()
	return fig2(tb, nil)
}

// Fig2Unpoisonable is Fig. 2 with F's BGP loop detection disabled
// (MaxOwnASOccurs = 0): F accepts paths containing its own ASN, so poison
// tokens naming F have no effect on it — the Smith et al. case poisoning-
// based defenses must fall back from.
func Fig2Unpoisonable(tb testing.TB) *Net {
	tb.Helper()
	return fig2(tb, func(asn topo.ASN, as *topo.AS) {
		if asn == F {
			as.MaxOwnASOccurs = 0
		}
	})
}

func fig2(tb testing.TB, tweak func(topo.ASN, *topo.AS)) *Net {
	tb.Helper()
	b := topo.NewBuilder()
	for _, asn := range []topo.ASN{O, B, A, C, D, E, F} {
		as := b.AddAS(asn, "")
		if tweak != nil {
			tweak(asn, as)
		}
		b.AddRouter(asn, "")
	}
	rel := [][2]topo.ASN{{O, B}, {B, A}, {B, C}, {C, D}, {A, E}, {D, E}, {F, A}}
	for _, r := range rel {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return assemble(tb, top, 21)
}

// Fig. 4 cast: vantage points in AS 1 and AS 5, target in AS 4, transit
// through AS 2 and AS 3.
const (
	VP1AS    topo.ASN = 1
	TransitA topo.ASN = 2 // near-side transit (TransTelecom analogue)
	TransitB topo.ASN = 3 // far-side transit (Rostelecom analogue)
	TargetAS topo.ASN = 4 // destination (Smartkom analogue)
	VP5AS    topo.ASN = 5
)

// Fig4 builds the isolation scenario of the paper's Fig. 4: two vantage
// points behind a shared transit, a destination two transit hops away. A
// reverse-path failure is modelled by TransitB dropping traffic destined to
// the VP1 block (use ReverseFailure).
func Fig4(tb testing.TB) *Net {
	tb.Helper()
	b := topo.NewBuilder()
	for asn := VP1AS; asn <= VP5AS; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]topo.ASN{{VP1AS, TransitA}, {VP5AS, TransitA}, {TransitB, TransitA}, {TargetAS, TransitB}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return assemble(tb, top, 9)
}

// ReverseFailure makes TransitB silently drop traffic destined to VP1's
// block — the unidirectional failure of the Fig. 4 walkthrough.
func (n *Net) ReverseFailure() dataplane.FailureID {
	return n.Plane.AddFailure(dataplane.BlackholeASTowards(TransitB, topo.Block(VP1AS)))
}
