package hijack_test

import (
	"net/netip"
	"testing"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/collectors"
	"lifeguard/internal/core/remedy"
	"lifeguard/internal/hijack"
	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func TestTableLookup(t *testing.T) {
	tbl := hijack.NewTable()
	tbl.Add(netip.MustParsePrefix("1.10.0.0/16"), 10)
	tbl.Add(netip.MustParsePrefix("1.10.0.0/24"), 10)
	tbl.Add(netip.MustParsePrefix("1.50.0.0/16"), 50)

	if owner, exact, ok := tbl.Owner(netip.MustParsePrefix("1.10.0.0/24")); !ok || !exact || owner != 10 {
		t.Fatalf("exact lookup = %d/%v/%v", owner, exact, ok)
	}
	if owner, exact, ok := tbl.Owner(netip.MustParsePrefix("1.10.128.0/24")); !ok || exact || owner != 10 {
		t.Fatalf("covering lookup = %d/%v/%v, want 10/false/true", owner, exact, ok)
	}
	if _, _, ok := tbl.Owner(netip.MustParsePrefix("9.9.9.0/24")); ok {
		t.Fatal("lookup outside owned space resolved")
	}
}

// pipeline assembles the full detection+mitigation stack over Fig. 2 with
// the origin's repair controller, collector peers at A, B and E, and an
// ownership table snapshotted before any attack.
func pipeline(t *testing.T, vantages ...topo.ASN) (*nettest.Net, *remedy.Controller, *hijack.Detector, *hijack.Responder) {
	t.Helper()
	n := nettest.Fig2(t)
	ctl := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	ctl.AnnounceBaseline()
	n.Converge(t)

	col := collectors.New(n.Eng, nettest.A, nettest.B, nettest.E)
	tbl := hijack.TableFromEngine(n.Eng)
	det := hijack.NewDetector(col, n.Top, n.Clk, tbl, hijack.DetectorConfig{})
	resp := hijack.NewResponder(det, ctl, n.Plane, hijack.ResponderConfig{
		Owner: nettest.O, Vantages: vantages,
	})
	det.Start()
	return n, ctl, det, resp
}

// TestDetectSubPrefix runs the headline scenario: a rogue more-specific
// appears in the collector streams and must be classified as a sub-prefix
// hijack of the covering owner, with a positive detection latency, and the
// alarm must clear once the rogue withdraws.
func TestDetectSubPrefix(t *testing.T) {
	n, _, det, _ := pipeline(t)
	sub := netip.MustParsePrefix("1.10.128.0/24")
	n.Clk.RunFor(1 * time.Minute)
	if len(det.History) != 0 {
		t.Fatalf("false alarms before the attack: %v", det.History[0])
	}

	n.Eng.Announce(nettest.F, sub, bgp.OriginConfig{})
	n.Clk.RunFor(2 * time.Minute)
	if len(det.History) != 1 {
		t.Fatalf("%d alarms, want exactly 1", len(det.History))
	}
	a := det.History[0]
	if a.Class != hijack.SubPrefix || a.Rogue != nettest.F || a.Owner != nettest.O || a.Prefix != sub {
		t.Fatalf("misclassified: %v", a)
	}
	if a.Latency <= 0 || a.Latency > det.Interval()+time.Minute {
		t.Fatalf("implausible detection latency %v", a.Latency)
	}
	if len(a.Peers) == 0 {
		t.Fatal("alarm lists no offending peers")
	}

	n.Eng.Withdraw(nettest.F, sub)
	n.Clk.RunFor(2 * time.Minute)
	if len(det.Active()) != 0 {
		t.Fatalf("alarm did not clear: %v", det.Active()[0])
	}
	if a.ClearedAt == 0 {
		t.Fatal("cleared alarm has no ClearedAt stamp")
	}
}

// TestDetectExactAndForged covers the other two classes: a false origin on
// a listed prefix, and an authentic origin reached over a fabricated
// adjacency.
func TestDetectExactAndForged(t *testing.T) {
	n, _, det, _ := pipeline(t)

	n.Eng.Announce(nettest.F, topo.Block(nettest.O), bgp.OriginConfig{})
	n.Clk.RunFor(1 * time.Minute)
	if len(det.History) != 1 || det.History[0].Class != hijack.ExactPrefix || det.History[0].Rogue != nettest.F {
		t.Fatalf("exact hijack not detected: %v", det.History)
	}
	n.Eng.Withdraw(nettest.F, topo.Block(nettest.O))
	n.Clk.RunFor(1 * time.Minute)

	// F forges origin D for D's block — the path ends at D, so only the
	// nonexistent F–D adjacency betrays it.
	if err := n.Eng.AnnounceForged(nettest.F, topo.Block(nettest.D), topo.Path{nettest.F, nettest.D}); err != nil {
		t.Fatal(err)
	}
	n.Clk.RunFor(1 * time.Minute)
	if len(det.History) != 2 {
		t.Fatalf("%d alarms, want 2", len(det.History))
	}
	a := det.History[1]
	if a.Class != hijack.ForgedOrigin || a.Rogue != nettest.F || a.Owner != nettest.D {
		t.Fatalf("forged origin misclassified: %v", a)
	}
}

// TestMitigateSubPrefix closes the loop: the responder re-claims the
// hijacked more-specific by announcing its two halves — winning longest-
// prefix match everywhere — with the rogue poisoned, verifies recovery
// from the owner's provider, and withdraws the counter-announcements when
// the attack clears.
func TestMitigateSubPrefix(t *testing.T) {
	n, ctl, det, resp := pipeline(t) // default vantages: O's providers = {B}
	sub := netip.MustParsePrefix("1.10.128.0/24")
	n.Eng.Announce(nettest.F, sub, bgp.OriginConfig{})
	n.Clk.RunFor(5 * time.Minute)

	if len(resp.Mitigations) != 1 {
		t.Fatalf("%d mitigations, want 1", len(resp.Mitigations))
	}
	m := resp.Mitigations[0]
	if m.Poisoned != nettest.F || m.Fallback {
		t.Fatalf("sub-prefix response should poison the rogue: %+v", m)
	}
	lo, hi, _ := remedy.Halves(sub)
	if len(m.Announced) != 2 || m.Announced[0] != lo || m.Announced[1] != hi {
		t.Fatalf("announced %v, want the contested halves %v, %v", m.Announced, lo, hi)
	}
	if !m.Verified() {
		t.Fatalf("mitigation never verified after %d checks (%d/%d recovered)",
			m.Checks, m.Recovered, m.Vantages)
	}
	if m.Latency <= 0 {
		t.Fatalf("mitigation latency %v, want > 0", m.Latency)
	}
	if got := len(ctl.Counters()); got != 2 {
		t.Fatalf("%d counter-announcements tracked, want 2", got)
	}

	n.Eng.Withdraw(nettest.F, sub)
	n.Clk.RunFor(2 * time.Minute)
	if len(det.Active()) != 0 {
		t.Fatal("alarm still active after the rogue withdrew")
	}
	if !m.Withdrawn {
		t.Fatal("counter-announcement not withdrawn on clearance")
	}
	if got := len(ctl.Counters()); got != 0 {
		t.Fatalf("%d counter-announcements still tracked after clearance", got)
	}
}

// TestMitigateExactByDeaggregation pins the ARTEMIS response to an exact
// hijack: the two more-specific halves out-compete the rogue /16 by
// longest-prefix match even at ASes whose BGP decision prefers the rogue.
// Vantages A and E are exactly the captured ASes.
func TestMitigateExactByDeaggregation(t *testing.T) {
	n, _, _, resp := pipeline(t, nettest.A, nettest.E)
	victim := topo.Block(nettest.O)
	n.Eng.Announce(nettest.F, victim, bgp.OriginConfig{})
	n.Clk.RunFor(5 * time.Minute)

	if len(resp.Mitigations) != 1 {
		t.Fatalf("%d mitigations, want 1", len(resp.Mitigations))
	}
	m := resp.Mitigations[0]
	lo, hi, _ := remedy.Halves(victim)
	if len(m.Announced) != 2 || m.Announced[0] != lo || m.Announced[1] != hi {
		t.Fatalf("announced %v, want the halves %v, %v", m.Announced, lo, hi)
	}
	if m.Poisoned != 0 {
		t.Fatalf("de-aggregation should not poison, got %d", m.Poisoned)
	}
	if !m.Verified() || m.Recovered != 2 {
		t.Fatalf("captured vantages did not recover: verified=%v %d/%d",
			m.Verified(), m.Recovered, m.Vantages)
	}
}

// TestUnpoisonableRogueFallsBack pins the Smith et al. feasibility result:
// a rogue that disables loop detection ignores poison tokens, so the
// responder must fall back to the plain pattern rather than announce a
// poison that cannot work.
func TestUnpoisonableRogueFallsBack(t *testing.T) {
	n := nettest.Fig2Unpoisonable(t)
	ctl := remedy.New(n.Eng, n.Prober, n.Clk, remedy.Config{Origin: nettest.O})
	ctl.AnnounceBaseline()
	n.Converge(t)
	col := collectors.New(n.Eng, nettest.A, nettest.B, nettest.E)
	det := hijack.NewDetector(col, n.Top, n.Clk, hijack.TableFromEngine(n.Eng), hijack.DetectorConfig{})
	resp := hijack.NewResponder(det, ctl, n.Plane, hijack.ResponderConfig{Owner: nettest.O})
	det.Start()

	sub := netip.MustParsePrefix("1.10.128.0/24")
	n.Eng.Announce(nettest.F, sub, bgp.OriginConfig{})
	n.Clk.RunFor(3 * time.Minute)
	if len(resp.Mitigations) != 1 {
		t.Fatalf("%d mitigations, want 1", len(resp.Mitigations))
	}
	m := resp.Mitigations[0]
	if !m.Fallback || m.Poisoned != 0 {
		t.Fatalf("expected plain-pattern fallback against an unpoisonable rogue: %+v", m)
	}
}

// TestResponderIgnoresOtherOwners: a multi-tenant rig shares the collector
// view, so a responder must not react to attacks on space it doesn't own.
func TestResponderIgnoresOtherOwners(t *testing.T) {
	n, _, _, resp := pipeline(t)
	n.Eng.Announce(nettest.F, netip.MustParsePrefix("1.50.240.0/24"), bgp.OriginConfig{})
	n.Clk.RunFor(2 * time.Minute)
	if len(resp.Mitigations) != 0 {
		t.Fatalf("responder for AS%d mitigated AS%d's prefix: %+v",
			nettest.O, nettest.D, resp.Mitigations[0])
	}
}
