package hijack

import (
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/core/remedy"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// ResponderConfig tunes the auto-mitigation loop.
type ResponderConfig struct {
	// Owner is the AS the responder defends; alarms for other owners are
	// ignored (each tenant mitigates only its own space).
	Owner topo.ASN
	// Vantages are the ASes whose data-plane view verifies recovery.
	// Default: the owner's providers — customer-route preference makes
	// them the first to flip back, so "all vantages recovered" is the
	// earliest honest claim of mitigation. ASes without routers are
	// skipped.
	Vantages []topo.ASN
	// VerifyInterval is the recovery-poll period. Default 30s.
	VerifyInterval time.Duration
	// VerifyBudget bounds the polls per mitigation (the attack may simply
	// win at some vantages — sub-prefix recovery is partial by design).
	// Default 20.
	VerifyBudget int
}

func (c ResponderConfig) withDefaults(top *topo.Topology) ResponderConfig {
	if len(c.Vantages) == 0 {
		c.Vantages = top.Providers(c.Owner)
	}
	var vs []topo.ASN
	for _, v := range c.Vantages {
		if as := top.AS(v); as != nil && len(as.Routers) > 0 {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	c.Vantages = vs
	if c.VerifyInterval == 0 {
		c.VerifyInterval = 30 * time.Second
	}
	if c.VerifyBudget == 0 {
		c.VerifyBudget = 20
	}
	return c
}

// Mitigation records the response to one alarm.
type Mitigation struct {
	Alarm *Alarm
	// Announced lists the counter-announcements installed: the two
	// de-aggregated halves for an exact-prefix or forged-origin attack,
	// or the contested more-specific itself for a sub-prefix attack.
	Announced []netip.Prefix
	// Poisoned names the rogue poisoned in the counter-announcement
	// pattern (sub-prefix response), 0 for the plain baseline pattern.
	Poisoned topo.ASN
	// Fallback is set when the rogue disables loop detection
	// (MaxOwnASOccurs == 0) and cannot be poisoned — the Smith et al.
	// result — so the plain pattern was used instead.
	Fallback  bool
	StartedAt time.Duration
	// VerifiedAt is when every vantage's data plane reached the owner
	// again (zero until then); Latency is VerifiedAt − Alarm.DetectedAt,
	// the paper's mitigation-delay metric.
	VerifiedAt time.Duration
	Latency    time.Duration
	// Recovered counts vantages reaching the owner at the last poll;
	// Vantages is the poll set size.
	Recovered, Vantages int
	// Checks counts recovery polls performed.
	Checks int
	// Withdrawn is set once the alarm cleared and the counter-
	// announcements were withdrawn.
	Withdrawn bool
}

// Verified reports whether the mitigation was confirmed from every vantage.
func (m *Mitigation) Verified() bool { return m.VerifiedAt != 0 }

// Responder is the mitigation half of the pipeline: it chains onto a
// Detector's alarm hooks, counter-announces through the remedy Controller,
// verifies recovery with data-plane probes from fixed vantages, and
// withdraws the counter-announcements when the alarm clears.
type Responder struct {
	ctl *remedy.Controller
	top *topo.Topology
	pl  *dataplane.Plane
	clk *simclock.Scheduler
	cfg ResponderConfig

	// OnMitigated fires when a mitigation verifies (every vantage
	// recovered); OnWithdrawn when the cleared alarm's counter-
	// announcements are removed.
	OnMitigated func(*Mitigation)
	OnWithdrawn func(*Mitigation)

	byKey map[alarmKey]*Mitigation
	// Mitigations lists every response ever mounted, in alarm order.
	Mitigations []*Mitigation

	mResponses func(string) *obs.Counter
	mChecks    func(bool) *obs.Counter
}

// NewResponder wires a responder onto det's hooks (preserving any already
// installed) using ctl — which must speak for cfg.Owner — to announce.
func NewResponder(det *Detector, ctl *remedy.Controller, pl *dataplane.Plane, cfg ResponderConfig) *Responder {
	r := &Responder{
		ctl: ctl, top: det.top, pl: pl, clk: det.clk,
		cfg:        cfg.withDefaults(det.top),
		byKey:      make(map[alarmKey]*Mitigation),
		mResponses: func(string) *obs.Counter { return nil },
		mChecks:    func(bool) *obs.Counter { return nil },
	}
	prevAlarm := det.OnAlarm
	det.OnAlarm = func(a *Alarm) {
		if prevAlarm != nil {
			prevAlarm(a)
		}
		r.handleAlarm(a)
	}
	prevClear := det.OnClear
	det.OnClear = func(a *Alarm) {
		if prevClear != nil {
			prevClear(a)
		}
		r.handleClear(a)
	}
	return r
}

// Instrument registers the responder's metrics with reg. A nil registry
// leaves it uninstrumented.
func (r *Responder) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_hijack_responses_total",
		"mitigations mounted, by response (deaggregate, reclaim, reclaim-fallback)")
	reg.Describe("lifeguard_hijack_recovery_checks_total",
		"data-plane recovery polls, by outcome")
	r.mResponses = func(kind string) *obs.Counter {
		return reg.Counter("lifeguard_hijack_responses_total", obs.L("response", kind))
	}
	r.mChecks = func(recovered bool) *obs.Counter {
		outcome := "pending"
		if recovered {
			outcome = "recovered"
		}
		return reg.Counter("lifeguard_hijack_recovery_checks_total", obs.L("outcome", outcome))
	}
}

// Vantages returns the effective verification vantage set.
func (r *Responder) Vantages() []topo.ASN { return r.cfg.Vantages }

// handleAlarm mounts the class-appropriate counter-announcement and starts
// the recovery poll.
func (r *Responder) handleAlarm(a *Alarm) {
	if a.Owner != r.cfg.Owner {
		return
	}
	k := alarmKey{class: a.Class, rogue: a.Rogue, prefix: a.Prefix}
	if r.byKey[k] != nil {
		return
	}
	m := &Mitigation{Alarm: a, StartedAt: r.clk.Now(), Vantages: len(r.cfg.Vantages)}
	switch a.Class {
	case SubPrefix:
		// The hijacked more-specific is re-claimed by announcing its two
		// halves — longest-prefix match beats the rogue at every AS — with
		// the rogue poisoned so recovered traffic never transits the
		// adversary. A rogue with loop detection disabled is unpoisonable
		// (Smith et al.); fall back to the plain pattern, conceding the
		// rogue's own cone but reclaiming everyone else. An unsplittable
		// /32 degrades to an equal-length reclaim.
		avoid := a.Rogue
		if as := r.top.AS(a.Rogue); as == nil || as.MaxOwnASOccurs == 0 {
			avoid = 0
			m.Fallback = true
			r.mResponses("reclaim-fallback").Inc()
		} else {
			r.mResponses("reclaim").Inc()
		}
		m.Poisoned = avoid
		if lo, hi, ok := remedy.Halves(a.Prefix); ok {
			r.ctl.CounterAnnounce(lo, avoid)
			r.ctl.CounterAnnounce(hi, avoid)
			m.Announced = []netip.Prefix{lo, hi}
		} else {
			r.ctl.CounterAnnounce(a.Prefix, avoid)
			m.Announced = []netip.Prefix{a.Prefix}
		}
	default: // ExactPrefix, ForgedOrigin
		// De-aggregate: the two halves out-compete the hijacked route by
		// longest-prefix match at every AS, rogue included. An unsplittable
		// /32 degrades to the sub-prefix response against the same prefix.
		if lo, hi, ok := remedy.Halves(a.Prefix); ok {
			r.ctl.CounterAnnounce(lo, 0)
			r.ctl.CounterAnnounce(hi, 0)
			m.Announced = []netip.Prefix{lo, hi}
			r.mResponses("deaggregate").Inc()
		} else {
			r.ctl.CounterAnnounce(a.Prefix, 0)
			m.Announced = []netip.Prefix{a.Prefix}
			r.mResponses("reclaim-fallback").Inc()
		}
	}
	r.byKey[k] = m
	r.Mitigations = append(r.Mitigations, m)
	r.armVerify(m)
}

// armVerify polls the vantages until every one reaches the owner again, the
// alarm clears, or the budget runs out.
func (r *Responder) armVerify(m *Mitigation) {
	var tick func()
	tick = func() {
		if m.Withdrawn || m.Verified() || m.Checks >= r.cfg.VerifyBudget {
			return
		}
		m.Checks++
		recovered := r.CheckRecovery(m)
		r.mChecks(recovered).Inc()
		if recovered {
			m.VerifiedAt = r.clk.Now()
			m.Latency = m.VerifiedAt - m.Alarm.DetectedAt
			if r.OnMitigated != nil {
				r.OnMitigated(m)
			}
			return
		}
		r.clk.After(r.cfg.VerifyInterval, tick)
	}
	r.clk.After(r.cfg.VerifyInterval, tick)
}

// CheckRecovery probes the contested prefix from every vantage hub and
// reports whether all of them reach the owner. It updates m.Recovered with
// the per-vantage count, the numerator of the fraction-recovered metric.
func (r *Responder) CheckRecovery(m *Mitigation) bool {
	probe := m.Alarm.Prefix.Masked().Addr().Next()
	n := 0
	for _, v := range r.cfg.Vantages {
		hub := r.top.AS(v).Routers[0]
		res := r.pl.Forward(hub, dataplane.Packet{Dst: probe})
		if res.Delivered() && res.LastAS == r.cfg.Owner {
			n++
		}
	}
	m.Recovered = n
	return n == len(r.cfg.Vantages) && n > 0
}

// handleClear withdraws the cleared alarm's counter-announcements.
func (r *Responder) handleClear(a *Alarm) {
	k := alarmKey{class: a.Class, rogue: a.Rogue, prefix: a.Prefix}
	m := r.byKey[k]
	if m == nil {
		return
	}
	delete(r.byKey, k)
	for _, p := range m.Announced {
		r.ctl.WithdrawCounter(p)
	}
	m.Withdrawn = true
	if r.OnWithdrawn != nil {
		r.OnWithdrawn(m)
	}
}
