// Package hijack is the owner-side BGP hijack pipeline, after ARTEMIS
// (Sermpezis et al., ToN 2018), grafted onto LIFEGUARD's machinery: the
// Detector consumes public route-collector streams and classifies routes
// that contradict a prefix-ownership table; the Responder counter-announces
// — de-aggregating an exactly-hijacked prefix into more-specific halves, or
// re-claiming a hijacked more-specific with the rogue AS poisoned — and
// verifies recovery with sentinel-style data-plane checks. Both halves run
// on the simulation clock, so detection and mitigation latencies are exact
// virtual-time measurements.
package hijack

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/topo"
)

// Class is the attack taxonomy the detector distinguishes.
type Class int

// Hijack classes, in ARTEMIS terms.
const (
	// ExactPrefix: the rogue originates a prefix in the ownership table
	// under its own ASN — the classic origin (type-0) hijack.
	ExactPrefix Class = iota
	// SubPrefix: the rogue originates a more-specific of owned space,
	// capturing traffic by longest-prefix match regardless of path length.
	SubPrefix
	// ForgedOrigin: the announced path ends at the legitimate origin, but
	// the AS claiming adjacency to it has no such link — a type-1 attack
	// that defeats origin validation and is caught only by path inspection.
	ForgedOrigin
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ExactPrefix:
		return "exact-prefix"
	case SubPrefix:
		return "sub-prefix"
	case ForgedOrigin:
		return "forged-origin"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Alarm is one detected hijack, identified by (class, rogue, prefix): the
// same rogue attacking the same prefix two different ways raises two alarms.
type Alarm struct {
	Class  Class
	Prefix netip.Prefix
	// Owner is the legitimate origin from the ownership table (the covering
	// owner for a sub-prefix attack).
	Owner topo.ASN
	// Rogue is the offending AS: the false origin, or for ForgedOrigin the
	// AS fabricating the adjacency.
	Rogue topo.ASN
	// DetectedAt is the scan instant that raised the alarm; Latency is how
	// long the offending route had been visible in collector streams by
	// then — the paper's detection-delay metric.
	DetectedAt time.Duration
	Latency    time.Duration
	// Peers lists the collector peers whose current route offends, updated
	// each scan while the alarm is active.
	Peers []topo.ASN
	// ClearedAt is when no peer offended any more (zero while active).
	ClearedAt time.Duration
}

// String renders the alarm deterministically.
func (a *Alarm) String() string {
	return fmt.Sprintf("%v of %v by AS%d (owner AS%d)", a.Class, a.Prefix, a.Rogue, a.Owner)
}

// alarmKey dedups alarms across scans.
type alarmKey struct {
	class  Class
	rogue  topo.ASN
	prefix netip.Prefix
}

func keyLess(a, b alarmKey) bool {
	if a.prefix.Addr() != b.prefix.Addr() {
		return a.prefix.Addr().Less(b.prefix.Addr())
	}
	if a.prefix.Bits() != b.prefix.Bits() {
		return a.prefix.Bits() < b.prefix.Bits()
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.rogue < b.rogue
}

// Table is the prefix-ownership ground truth the detector checks routes
// against — the role ARTEMIS gives the operator's own prefix list. Lookups
// resolve exact matches first, then the longest covering entry, so owned
// space extends to un-listed more-specifics (where hijacks appear) while
// unrelated prefixes stay out of scope.
type Table struct {
	owners map[netip.Prefix]topo.ASN
	// order holds the prefixes most-specific-first for covering lookups.
	order []netip.Prefix
}

// NewTable returns an empty ownership table.
func NewTable() *Table {
	return &Table{owners: make(map[netip.Prefix]topo.ASN)}
}

// Add records owner as the legitimate origin of prefix.
func (t *Table) Add(prefix netip.Prefix, owner topo.ASN) {
	prefix = prefix.Masked()
	if _, dup := t.owners[prefix]; !dup {
		t.order = append(t.order, prefix)
		sort.Slice(t.order, func(i, j int) bool {
			if t.order[i].Bits() != t.order[j].Bits() {
				return t.order[i].Bits() > t.order[j].Bits()
			}
			return t.order[i].Addr().Less(t.order[j].Addr())
		})
	}
	t.owners[prefix] = owner
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.owners) }

// Owner resolves the legitimate origin for prefix: exact reports whether the
// prefix itself is listed, and ok is false when no entry covers it at all.
func (t *Table) Owner(prefix netip.Prefix) (owner topo.ASN, exact, ok bool) {
	prefix = prefix.Masked()
	if o, hit := t.owners[prefix]; hit {
		return o, true, true
	}
	for _, p := range t.order {
		if p.Bits() < prefix.Bits() && p.Contains(prefix.Addr()) {
			return t.owners[p], false, true
		}
	}
	return 0, false, false
}

// TableFromEngine snapshots the engine's current origin announcements into
// an ownership table — one entry per (prefix, origin) pair, with prefixes
// announced by more than one AS excluded as ambiguous. Snapshot *before*
// any attack is injected: a hijack already installed would be recorded as
// legitimate ownership.
func TableFromEngine(e *bgp.Engine) *Table {
	t := NewTable()
	seen := make(map[netip.Prefix]topo.ASN)
	ambiguous := make(map[netip.Prefix]bool)
	for _, asn := range e.Topology().ASNs() {
		for _, o := range e.Origins(asn) {
			p := o.Prefix.Masked()
			if prev, dup := seen[p]; dup && prev != asn {
				ambiguous[p] = true
				continue
			}
			seen[p] = asn
		}
	}
	for p, asn := range seen {
		if !ambiguous[p] {
			t.Add(p, asn)
		}
	}
	return t
}
