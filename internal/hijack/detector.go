package hijack

import (
	"sort"
	"time"

	"lifeguard/internal/collectors"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// DetectorConfig tunes the detection loop.
type DetectorConfig struct {
	// Interval is the scan period. ARTEMIS detects within seconds because
	// it consumes streaming BGP feeds; the simulated equivalent is a short
	// poll of the collector state. Default 10s.
	Interval time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval == 0 {
		c.Interval = 10 * time.Second
	}
	return c
}

// Detector watches route-collector streams for announcements that
// contradict the ownership table. It is the control-plane half of the
// pipeline: purely observational, raising and clearing Alarms. Classes
// covered: exact-prefix (false origin on a listed prefix), sub-prefix
// (false origin on a more-specific of owned space), and forged-origin
// (authentic origin reached over a fabricated adjacency).
type Detector struct {
	col *collectors.Collector
	top *topo.Topology
	clk *simclock.Scheduler
	tbl *Table
	cfg DetectorConfig

	// OnAlarm fires when a new alarm is raised; OnClear when no collector
	// peer holds an offending route any more. Both run on the simulation
	// goroutine.
	OnAlarm func(*Alarm)
	OnClear func(*Alarm)

	active map[alarmKey]*Alarm
	// History lists every alarm ever raised, in detection order.
	History []*Alarm

	started bool
	ticker  simclock.EventID

	mScans, mCleared *obs.Counter
	mAlarms          func(Class) *obs.Counter
}

// NewDetector wires a detector over collector streams, checking against the
// given ownership table.
func NewDetector(col *collectors.Collector, top *topo.Topology, clk *simclock.Scheduler, tbl *Table, cfg DetectorConfig) *Detector {
	return &Detector{
		col: col, top: top, clk: clk, tbl: tbl,
		cfg:     cfg.withDefaults(),
		active:  make(map[alarmKey]*Alarm),
		mAlarms: func(Class) *obs.Counter { return nil },
	}
}

// Instrument registers the detector's metrics with reg. A nil registry
// leaves it uninstrumented.
func (d *Detector) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_hijack_scans_total",
		"detector passes over the collector streams")
	reg.Describe("lifeguard_hijack_alarms_total",
		"hijack alarms raised, by class")
	reg.Describe("lifeguard_hijack_cleared_total",
		"hijack alarms cleared after the offending routes vanished")
	d.mScans = reg.Counter("lifeguard_hijack_scans_total")
	d.mCleared = reg.Counter("lifeguard_hijack_cleared_total")
	d.mAlarms = func(c Class) *obs.Counter {
		return reg.Counter("lifeguard_hijack_alarms_total", obs.L("class", c.String()))
	}
}

// Interval returns the effective scan period.
func (d *Detector) Interval() time.Duration { return d.cfg.Interval }

// Active returns the currently-raised alarms in deterministic order.
func (d *Detector) Active() []*Alarm {
	keys := d.sortedActiveKeys()
	out := make([]*Alarm, 0, len(keys))
	for _, k := range keys {
		out = append(out, d.active[k])
	}
	return out
}

// Start begins periodic scanning; idempotent.
func (d *Detector) Start() {
	if d.started {
		return
	}
	d.started = true
	var tick func()
	tick = func() {
		if !d.started {
			return
		}
		d.Scan()
		d.ticker = d.clk.After(d.cfg.Interval, tick)
	}
	d.ticker = d.clk.After(d.cfg.Interval, tick)
}

// Stop halts scanning; active alarms stay raised (they clear on the next
// Scan after a Start). Idempotent.
func (d *Detector) Stop() {
	if !d.started {
		return
	}
	d.started = false
	d.clk.Cancel(d.ticker)
}

// Started reports whether the scan loop is running.
func (d *Detector) Started() bool { return d.started }

// classify checks one announced path against the prefix's resolved owner.
// The path is origin-last; exact says whether the prefix itself is listed in
// the table (vs. resolved through a covering entry).
func (d *Detector) classify(p topo.Path, owner topo.ASN, exact bool) (Class, topo.ASN, bool) {
	origin, ok := p.Origin()
	if !ok {
		return 0, 0, false
	}
	if origin != owner {
		if exact {
			return ExactPrefix, origin, true
		}
		return SubPrefix, origin, true
	}
	// Origin is authentic. The origin's own announcement pattern (prepends,
	// poison tokens) forms the path suffix starting at the first occurrence
	// of the owner ASN — only the owner can insert its own ASN — so the
	// element just before that is the AS claiming to be the owner's
	// neighbor. A claim the topology doesn't back is a forged-origin attack.
	for i, asn := range p {
		if asn == owner {
			if i == 0 {
				return 0, 0, false // collector peer neighbors the owner directly
			}
			if claimant := p[i-1]; !d.top.Adjacent(claimant, owner) {
				return ForgedOrigin, claimant, true
			}
			return 0, 0, false
		}
	}
	return 0, 0, false
}

// Scan runs one detection pass: every recorded prefix that resolves in the
// ownership table is checked at every collector peer's current route. New
// offending (class, rogue, prefix) combinations raise alarms stamped with
// how long the offense had been visible; active alarms with no remaining
// offending peer clear. Deterministic: prefixes, peers, and alarm keys are
// all iterated in sorted order.
func (d *Detector) Scan() {
	now := d.clk.Now()
	d.mScans.Inc()

	type offense struct {
		owner topo.ASN
		peers []topo.ASN
	}
	offending := make(map[alarmKey]*offense)
	var keys []alarmKey
	for _, prefix := range d.col.RecordedPrefixes() {
		owner, exact, ok := d.tbl.Owner(prefix)
		if !ok {
			continue // not our address space
		}
		for _, peer := range d.col.Peers() {
			path := d.col.CurrentPath(peer, prefix)
			if len(path) == 0 {
				continue
			}
			class, rogue, bad := d.classify(path, owner, exact)
			if !bad {
				continue
			}
			k := alarmKey{class: class, rogue: rogue, prefix: prefix}
			o := offending[k]
			if o == nil {
				o = &offense{owner: owner}
				offending[k] = o
				keys = append(keys, k)
			}
			o.peers = append(o.peers, peer)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	for _, k := range keys {
		o := offending[k]
		if a := d.active[k]; a != nil {
			a.Peers = o.peers
			continue
		}
		a := &Alarm{
			Class: k.class, Prefix: k.prefix, Owner: o.owner, Rogue: k.rogue,
			DetectedAt: now, Peers: o.peers,
		}
		if first, ok := d.earliestOffense(k, o.owner); ok {
			a.Latency = now - first
		}
		d.active[k] = a
		d.History = append(d.History, a)
		d.mAlarms(k.class).Inc()
		if d.OnAlarm != nil {
			d.OnAlarm(a)
		}
	}

	for _, k := range d.sortedActiveKeys() {
		if offending[k] != nil {
			continue
		}
		a := d.active[k]
		delete(d.active, k)
		a.Peers = nil
		a.ClearedAt = now
		d.mCleared.Inc()
		if d.OnClear != nil {
			d.OnClear(a)
		}
	}
}

// earliestOffense finds when the offense first became visible in any peer's
// stream — the reference point for detection latency.
func (d *Detector) earliestOffense(k alarmKey, owner topo.ASN) (time.Duration, bool) {
	_, exact, _ := d.tbl.Owner(k.prefix)
	first, found := time.Duration(0), false
	for _, peer := range d.col.Peers() {
		for _, e := range d.col.Updates(peer, k.prefix) {
			if len(e.Path) == 0 {
				continue
			}
			class, rogue, bad := d.classify(e.Path, owner, exact)
			if !bad || class != k.class || rogue != k.rogue {
				continue
			}
			if !found || e.At < first {
				first = e.At
			}
			found = true
			break // entries are time-ordered; the first hit is this peer's earliest
		}
	}
	return first, found
}

func (d *Detector) sortedActiveKeys() []alarmKey {
	keys := make([]alarmKey, 0, len(d.active))
	for k := range d.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}
