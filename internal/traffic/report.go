package traffic

import (
	"fmt"
	"time"

	"lifeguard/internal/dataplane"
)

// nreasons sizes the by-reason arrays; index by dataplane.DropReason.
const nreasons = int(dataplane.ForwardLoop) + 1

// EpochReport is one shard's accounting for one epoch. All fields are
// integers so that merging is exact and order-independent — the basis of
// the byte-identical-at-any-parallelism contract.
type EpochReport struct {
	// Epoch is the zero-based epoch index; VTime the sim-clock time the
	// epoch closed at; Seconds its length.
	Epoch   int
	VTime   time.Duration
	Seconds int64
	// Flows is the flow population this report covers; Served of those
	// exchanged both packets, Lost did not.
	Flows, Served, Lost int64
	// Packets counts data-plane packets injected (both directions).
	Packets int64
	// LostByReason breaks Lost down by the dataplane.DropReason that
	// killed each flow's epoch (the forward drop if the forward leg
	// failed, the reply drop otherwise). The Delivered slot stays zero.
	LostByReason [nreasons]int64
	// UserSecondsLost is Lost × Seconds: the paper's availability metric.
	UserSecondsLost int64
}

// Availability is the fraction of flows served this epoch.
func (r *EpochReport) Availability() float64 {
	if r.Flows == 0 {
		return 1
	}
	return float64(r.Served) / float64(r.Flows)
}

// MergeEpochs folds per-shard epoch series into the series an unsharded
// generator with the same Config would have produced. Every part must
// cover the same epochs (same index, close time, and length); integer
// sums make the result independent of part order.
func MergeEpochs(parts ...[]EpochReport) ([]EpochReport, error) {
	if len(parts) == 0 {
		return nil, nil
	}
	merged := append([]EpochReport(nil), parts[0]...)
	for pi, part := range parts[1:] {
		if len(part) != len(merged) {
			return nil, fmt.Errorf("traffic: shard %d has %d epochs, shard 0 has %d",
				pi+1, len(part), len(merged))
		}
		for i := range part {
			m, p := &merged[i], &part[i]
			if p.Epoch != m.Epoch || p.VTime != m.VTime || p.Seconds != m.Seconds {
				return nil, fmt.Errorf("traffic: shard %d epoch %d timeline mismatch", pi+1, i)
			}
			m.Flows += p.Flows
			m.Served += p.Served
			m.Lost += p.Lost
			m.Packets += p.Packets
			for r := range m.LostByReason {
				m.LostByReason[r] += p.LostByReason[r]
			}
			m.UserSecondsLost += p.UserSecondsLost
		}
	}
	return merged, nil
}

// Summary totals an epoch series.
type Summary struct {
	Epochs int
	// FlowEpochs is the number of (flow, epoch) service opportunities;
	// Served and Lost partition it.
	FlowEpochs, Served, Lost int64
	Packets                  int64
	LostByReason             [nreasons]int64
	UserSecondsLost          int64
}

// Availability is the overall fraction of flow-epochs served.
func (s *Summary) Availability() float64 {
	if s.FlowEpochs == 0 {
		return 1
	}
	return float64(s.Served) / float64(s.FlowEpochs)
}

// Summarize totals eps.
func Summarize(eps []EpochReport) Summary {
	var s Summary
	s.Epochs = len(eps)
	for i := range eps {
		e := &eps[i]
		s.FlowEpochs += e.Flows
		s.Served += e.Served
		s.Lost += e.Lost
		s.Packets += e.Packets
		for r := range e.LostByReason {
			s.LostByReason[r] += e.LostByReason[r]
		}
		s.UserSecondsLost += e.UserSecondsLost
	}
	return s
}
