package traffic

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// rig is one converged internetwork with a fresh plane — the fixture every
// test builds identically so runs are comparable.
type rig struct {
	res   *topogen.Result
	clk   *simclock.Scheduler
	eng   *bgp.Engine
	plane *dataplane.Plane
}

func newRig(t testing.TB) *rig {
	t.Helper()
	res, err := topogen.Generate(topogen.Config{Seed: 11, NumTransit: 8, NumStub: 24})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 11})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		t.Fatal("no convergence")
	}
	return &rig{res: res, clk: clk, eng: eng, plane: dataplane.New(res.Top, eng)}
}

// popConfig is the shared population: 4 vantages, 6 weighted destinations,
// 10k flows with churn.
func popConfig(r *rig) Config {
	var dests []Dest
	for i, s := range r.res.Stubs[8:14] {
		dests = append(dests, Dest{Addr: topo.ProductionAddr(s), Weight: 1 + i%3})
	}
	return Config{
		Seed:     42,
		Flows:    10_000,
		Vantages: []topo.ASN{r.res.Stubs[0], r.res.Stubs[1], r.res.Stubs[2], r.res.Stubs[3]},
		Dests:    dests,
		Epoch:    10 * time.Second,
		Churn:    0.05,
	}
}

// providerOf returns the last transit AS on the forwarding path from one
// of the population's vantages to addr — a fault there blackholes the
// destination for every vantage routing through it. Pure function of the
// rig, so every shard derives the same fault.
func providerOf(t *testing.T, r *rig, from topo.ASN, addr netip.Addr) topo.ASN {
	t.Helper()
	probe := r.plane.Forward(r.res.Top.AS(from).Routers[0], dataplane.Packet{Dst: addr})
	path := probe.ASPath()
	if !probe.Delivered() || len(path) < 3 {
		t.Fatalf("no transit path to %v: %v (path %v)", addr, probe.Reason, path)
	}
	return path[len(path)-2]
}

// runEpochs plays a fixed timeline against g: three clean epochs, a
// unidirectional blackhole toward the first destination for three epochs,
// then repair and three more. Shards replaying this against their own rigs
// see identical routing state at every epoch.
func runEpochs(t *testing.T, r *rig, g *Generator) []EpochReport {
	dst := topo.ProductionAddr(r.res.Stubs[8])
	fault := providerOf(t, r, r.res.Stubs[0], dst)
	var eps []EpochReport
	step := func(n int) {
		for i := 0; i < n; i++ {
			r.clk.RunFor(g.Epoch())
			eps = append(eps, g.RunEpoch())
		}
	}
	step(3)
	fid := r.plane.AddFailure(dataplane.BlackholeASTowards(
		fault, topo.ProductionPrefix(r.res.Stubs[8])))
	step(3)
	r.plane.RemoveFailure(fid)
	step(3)
	return eps
}

func TestGeneratorDeterminism(t *testing.T) {
	var runs [2][]EpochReport
	for i := range runs {
		r := newRig(t)
		g, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane}, popConfig(r))
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = runEpochs(t, r, g)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", runs[0], runs[1])
	}
}

// TestShardMergeIdentity is the sharding contract: three shards, each on
// its own identical rig, merge to the exact report series of an unsharded
// run — the property the runner-parallel experiment relies on.
func TestShardMergeIdentity(t *testing.T) {
	r := newRig(t)
	g, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane}, popConfig(r))
	if err != nil {
		t.Fatal(err)
	}
	whole := runEpochs(t, r, g)

	var parts [][]EpochReport
	total := 0
	for shard := 0; shard < 3; shard++ {
		sr := newRig(t)
		cfg := popConfig(sr)
		cfg.ShardIndex, cfg.ShardCount = shard, 3
		sg, err := New(Deps{Top: sr.res.Top, Clk: sr.clk, Plane: sr.plane}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		total += sg.Flows()
		parts = append(parts, runEpochs(t, sr, sg))
	}
	if total != g.Flows() {
		t.Fatalf("shards model %d flows, whole population is %d", total, g.Flows())
	}
	merged, err := MergeEpochs(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, whole) {
		t.Fatalf("sharded merge diverged from unsharded run:\nmerged: %+v\nwhole:  %+v", merged, whole)
	}
}

// TestBatchedMatchesSinglePacket pins that the batched fast path and the
// one-Forward-per-packet baseline produce identical accounting.
func TestBatchedMatchesSinglePacket(t *testing.T) {
	var runs [2][]EpochReport
	for i, single := range []bool{false, true} {
		r := newRig(t)
		cfg := popConfig(r)
		cfg.SinglePacket = single
		g, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = runEpochs(t, r, g)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("batched and single-packet accounting diverged:\n%+v\n%+v", runs[0], runs[1])
	}
}

// TestOutageAccounting checks the shape of the numbers: full availability
// before the fault, blackhole-attributed loss during it (forward leg), and
// recovery after repair — plus a reverse-path fault that forward delivery
// alone would miss.
func TestOutageAccounting(t *testing.T) {
	r := newRig(t)
	cfg := popConfig(r)
	g, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := runEpochs(t, r, g)
	if len(eps) != 9 {
		t.Fatalf("expected 9 epochs, got %d", len(eps))
	}
	for i := 0; i < 3; i++ {
		if eps[i].Lost != 0 || eps[i].Availability() != 1 {
			t.Fatalf("pre-fault epoch %d lost %d flows", i, eps[i].Lost)
		}
	}
	during := Summarize(eps[3:6])
	if during.Lost == 0 {
		t.Fatal("fault epochs lost no flows — the blackhole missed the population")
	}
	if during.LostByReason[dataplane.Blackhole] != during.Lost {
		t.Fatalf("loss not attributed to the blackhole: %+v", during.LostByReason)
	}
	if want := during.Lost * 10; during.UserSecondsLost != want {
		t.Fatalf("user-seconds lost = %d, want lost×epoch = %d", during.UserSecondsLost, want)
	}
	for i := 6; i < 9; i++ {
		if eps[i].Lost != 0 {
			t.Fatalf("post-repair epoch %d still lost %d flows", i, eps[i].Lost)
		}
	}

	// Reverse-path failure: drop replies headed back to vantage 0. The
	// forward leg still delivers, so any loss here is reply-leg loss.
	revFault := providerOf(t, r, r.res.Stubs[8], topo.ProductionAddr(r.res.Stubs[0]))
	r.plane.AddFailure(dataplane.BlackholeASTowards(
		revFault, topo.ProductionPrefix(r.res.Stubs[0])))
	r.clk.RunFor(g.Epoch())
	rev := g.RunEpoch()
	if rev.Lost == 0 {
		t.Fatal("reverse-path blackhole cost nothing — reply leg not accounted")
	}
	if rev.LostByReason[dataplane.Blackhole] != rev.Lost {
		t.Fatalf("reverse-path loss misattributed: %+v", rev.LostByReason)
	}
}

// TestGeneratorObsAndJournal checks the metric and journal surface: epoch
// events recorded with the traffic subsystem tag, counters advancing.
func TestGeneratorObsAndJournal(t *testing.T) {
	r := newRig(t)
	reg := obs.New()
	j := obs.NewJournal(64)
	g, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane, Obs: reg, Journal: j}, popConfig(r))
	if err != nil {
		t.Fatal(err)
	}
	r.clk.RunFor(g.Epoch())
	rep := g.RunEpoch()
	if rep.Flows != int64(g.Flows()) {
		t.Fatalf("epoch covered %d flows, population is %d", rep.Flows, g.Flows())
	}

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"lifeguard_traffic_epochs_total 1",
		"lifeguard_traffic_flow_epochs_served_total",
		"lifeguard_traffic_packets_total",
		`lifeguard_traffic_user_seconds_lost_total{reason="blackhole"}`,
		"lifeguard_traffic_active_flows 10000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}

	evs := j.Events()
	found := false
	for _, ev := range evs {
		if ev.Subsystem == "traffic" && ev.Kind == "epoch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no traffic/epoch journal event in %d events", len(evs))
	}
}

func TestApportion(t *testing.T) {
	dests := []Dest{{Weight: 3}, {Weight: 1}, {Weight: 1}, {}}
	counts := apportion(1000, dests)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 1000 {
		t.Fatalf("apportion dropped flows: %v sums to %d", counts, sum)
	}
	if counts[0] != 500 {
		t.Fatalf("weight-3 destination got %d of 1000 (weights 3:1:1:1)", counts[0])
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t)
	base := popConfig(r)
	for name, mut := range map[string]func(*Config){
		"zero flows":       func(c *Config) { c.Flows = 0 },
		"no vantages":      func(c *Config) { c.Vantages = nil },
		"no dests":         func(c *Config) { c.Dests = nil },
		"fractional epoch": func(c *Config) { c.Epoch = 1500 * time.Millisecond },
		"bad churn":        func(c *Config) { c.Churn = 1.5 },
		"bad shard":        func(c *Config) { c.ShardIndex = 4; c.ShardCount = 4 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := New(Deps{Top: r.res.Top, Clk: r.clk, Plane: r.plane}, cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", name)
		}
	}
}
