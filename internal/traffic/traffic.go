// Package traffic models millions of concurrent user flows crossing the
// simulated internetwork, so outages and repairs can be scored the way the
// LIFEGUARD paper frames them: not "when did probes converge" but "how many
// user-seconds of connectivity were lost".
//
// The model is a constant-size flow population behind a set of vantage
// ASes. Every flow targets one monitored destination address and, each
// sim-clock epoch, exchanges one forward packet (vantage production address
// -> destination) and — if that is delivered — one reply (destination ->
// vantage). A flow is served for the epoch only when both directions
// deliver; otherwise the epoch's seconds are charged to the drop reason
// that killed it. Reply-direction drops are first-class because LIFEGUARD's
// core observation is that reverse-path failures are both common and
// invisible to forward-only probing.
//
// Determinism and sharding. All randomness (initial vantage assignment and
// per-epoch churn) comes from one SplitMix64 stream per destination, seeded
// from Config.Seed and the destination's global index in Config.Dests —
// never from the shard layout. A generator configured with
// ShardIndex/ShardCount owns the destinations whose global index hashes to
// its shard and produces per-epoch reports covering only those flows;
// MergeEpochs folds any sharding of the same Config back into reports
// byte-identical to an unsharded run. That is the same merge contract the
// runner and experiment suites commit to: output is invariant to
// parallelism.
//
// Allocation discipline. Flow state is a dense array of vantage indices
// (two bytes per flow), and the packet/result buffers for batched
// forwarding are reused across epochs, so steady-state epochs allocate
// nothing per flow.
package traffic

import (
	"fmt"
	"net/netip"
	"time"

	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Dest is one monitored destination in the flow population's mix.
type Dest struct {
	// Addr is the user-facing address flows exchange packets with,
	// typically topo.ProductionAddr of the monitored AS.
	Addr netip.Addr
	// Weight is the destination's relative share of the flow population.
	// Zero means 1.
	Weight int
}

// Config sizes and seeds a flow population.
type Config struct {
	// Seed drives every random choice. Two generators with equal Config
	// produce byte-identical epoch reports.
	Seed uint64
	// Flows is the total modelled flow count across all destinations and
	// shards.
	Flows int
	// Vantages are the ASes the user populations sit behind. Flows source
	// from each vantage's production address and inject at its hub router.
	Vantages []topo.ASN
	// Dests is the destination mix. Order matters: a destination's global
	// index seeds its random stream and decides its shard.
	Dests []Dest
	// Epoch is the accounting interval; every flow exchanges one packet
	// pair per epoch. Must be a whole number of seconds. Zero means 10s.
	Epoch time.Duration
	// Churn is the per-epoch probability that a flow departs and is
	// replaced by a fresh arrival (possibly behind a different vantage).
	Churn float64
	// ShardIndex/ShardCount select the slice of destinations this
	// generator simulates: those with global index ≡ ShardIndex (mod
	// ShardCount). Zero ShardCount means the whole population.
	ShardIndex, ShardCount int
	// SinglePacket forwards every packet through Plane.Forward instead of
	// ForwardBatch. The reports are identical either way (that is
	// ForwardBatch's contract); this is the baseline mode lgbench uses to
	// measure the batching win.
	SinglePacket bool
}

func (cfg *Config) epoch() time.Duration {
	if cfg.Epoch == 0 {
		return 10 * time.Second
	}
	return cfg.Epoch
}

// Deps wires a Generator to a rig. Obs and Journal may be nil.
type Deps struct {
	Top     *topo.Topology
	Clk     *simclock.Scheduler
	Plane   *dataplane.Plane
	Obs     *obs.Registry
	Journal *obs.Journal
}

// stream is a SplitMix64 sequence; one per destination, so results never
// depend on which shard (or worker) simulates the destination.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (s *stream) float() float64 { return float64(s.next()>>11) / (1 << 53) }

// destState is one destination's slice of the population.
type destState struct {
	global int        // index in Config.Dests
	addr   netip.Addr //
	hub    topo.RouterID
	rng    stream
	flows  []uint16 // vantage index per flow; the whole per-flow state
}

// Generator owns one shard of the flow population.
type Generator struct {
	cfg   Config
	top   *topo.Topology
	clk   *simclock.Scheduler
	plane *dataplane.Plane

	hubs  []topo.RouterID // injection router per vantage
	srcs  []netip.Addr    // production address per vantage
	dests []destState     // this shard's destinations
	flows int             // flows in this shard

	epoch  int
	pkts   []dataplane.Packet
	res    []dataplane.Result
	counts []int64 // per-vantage scratch, reused per destination

	obs     generatorObs
	journal *obs.Journal
}

// generatorObs holds the generator's metric handles; all nil-safe, so an
// uninstrumented generator records nothing.
type generatorObs struct {
	epochs  *obs.Counter
	served  *obs.Counter
	lost    *obs.Counter
	packets *obs.Counter
	// userSeconds is indexed by dataplane.DropReason. The Delivered slot
	// stays nil: delivered flows lose no user-seconds.
	userSeconds [int(dataplane.ForwardLoop) + 1]*obs.Counter
	active      *obs.Gauge
}

// New validates cfg and builds the shard's flow population. The population
// is assigned deterministically: destination flow counts by largest
// remainder over the weights, vantages by each destination's own stream.
func New(d Deps, cfg Config) (*Generator, error) {
	if d.Top == nil || d.Clk == nil || d.Plane == nil {
		return nil, fmt.Errorf("traffic: Deps.Top, Clk and Plane are required")
	}
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("traffic: Flows must be positive, got %d", cfg.Flows)
	}
	if len(cfg.Vantages) == 0 || len(cfg.Vantages) > 1<<16 {
		return nil, fmt.Errorf("traffic: need 1..65536 vantages, got %d", len(cfg.Vantages))
	}
	if len(cfg.Dests) == 0 {
		return nil, fmt.Errorf("traffic: need at least one destination")
	}
	if e := cfg.epoch(); e < time.Second || e%time.Second != 0 {
		return nil, fmt.Errorf("traffic: Epoch must be a whole number of seconds, got %v", e)
	}
	if cfg.Churn < 0 || cfg.Churn > 1 {
		return nil, fmt.Errorf("traffic: Churn must be in [0,1], got %g", cfg.Churn)
	}
	if cfg.ShardCount == 0 {
		cfg.ShardCount = 1
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
		return nil, fmt.Errorf("traffic: ShardIndex %d outside [0,%d)", cfg.ShardIndex, cfg.ShardCount)
	}

	g := &Generator{
		cfg:     cfg,
		top:     d.Top,
		clk:     d.Clk,
		plane:   d.Plane,
		counts:  make([]int64, len(cfg.Vantages)),
		journal: d.Journal,
	}
	for _, v := range cfg.Vantages {
		as := d.Top.AS(v)
		if as == nil || len(as.Routers) == 0 {
			return nil, fmt.Errorf("traffic: vantage AS%d not in topology", v)
		}
		g.hubs = append(g.hubs, as.Routers[0])
		g.srcs = append(g.srcs, topo.ProductionAddr(v))
	}

	// Global flow counts per destination (largest remainder), computed
	// identically on every shard so shard membership is the only
	// difference between two shards of the same Config.
	counts := apportion(cfg.Flows, cfg.Dests)
	for i, dst := range cfg.Dests {
		if i%cfg.ShardCount != cfg.ShardIndex {
			continue
		}
		owner, ok := topo.OwnerOf(dst.Addr)
		if !ok {
			return nil, fmt.Errorf("traffic: destination %v outside the address plan", dst.Addr)
		}
		as := d.Top.AS(owner)
		if as == nil || len(as.Routers) == 0 {
			return nil, fmt.Errorf("traffic: destination %v owner AS%d not in topology", dst.Addr, owner)
		}
		ds := destState{
			global: i,
			addr:   dst.Addr,
			hub:    as.Routers[0],
			rng:    stream{state: cfg.Seed + uint64(i)*0x9E3779B9},
			flows:  make([]uint16, counts[i]),
		}
		for f := range ds.flows {
			ds.flows[f] = uint16(ds.rng.next() % uint64(len(cfg.Vantages)))
		}
		g.flows += len(ds.flows)
		g.dests = append(g.dests, ds)
	}
	g.Instrument(d.Obs)
	return g, nil
}

// apportion splits total flows over the destinations proportionally to
// their weights, by largest remainder — deterministic and exact.
func apportion(total int, dests []Dest) []int {
	weights := make([]int, len(dests))
	sum := 0
	for i, d := range dests {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		sum += w
	}
	counts := make([]int, len(dests))
	rems := make([]int, len(dests))
	assigned := 0
	for i, w := range weights {
		counts[i] = total * w / sum
		rems[i] = total * w % sum
		assigned += counts[i]
	}
	// Hand the rounding leftovers to destinations in decreasing remainder
	// order, ties broken by index — stable regardless of shard layout.
	for assigned < total {
		best := 0
		for i, r := range rems {
			if r > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	return counts
}

// Instrument registers the generator's metrics on reg. Nil reg is allowed.
func (g *Generator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	g.obs.epochs = reg.Counter("lifeguard_traffic_epochs_total")
	g.obs.served = reg.Counter("lifeguard_traffic_flow_epochs_served_total")
	g.obs.lost = reg.Counter("lifeguard_traffic_flow_epochs_lost_total")
	g.obs.packets = reg.Counter("lifeguard_traffic_packets_total")
	for r := dataplane.NoRoute; r <= dataplane.ForwardLoop; r++ {
		g.obs.userSeconds[r] = reg.Counter("lifeguard_traffic_user_seconds_lost_total",
			obs.L("reason", r.String()))
	}
	g.obs.active = reg.Gauge("lifeguard_traffic_active_flows")
	g.obs.active.Set(int64(g.flows))
}

// Flows reports the number of flows this shard models.
func (g *Generator) Flows() int { return g.flows }

// Epoch reports the accounting interval.
func (g *Generator) Epoch() time.Duration { return g.cfg.epoch() }

// RunEpoch closes one accounting epoch at the clock's current time: churns
// the population, exchanges every flow's packet pair against the current
// RIB and failure table, and returns the shard's report. It never advances
// the clock — the caller owns time, typically alternating
// clk.RunFor(Epoch()) with RunEpoch() so routing events interleave with
// accounting.
func (g *Generator) RunEpoch() EpochReport {
	epochSecs := int64(g.cfg.epoch() / time.Second)
	rep := EpochReport{
		Epoch:   g.epoch,
		VTime:   g.clk.Now(),
		Seconds: epochSecs,
	}
	nvan := len(g.cfg.Vantages)
	for di := range g.dests {
		d := &g.dests[di]
		// Churn: each departing flow is replaced by an arrival with a
		// freshly drawn vantage, keeping the population size constant.
		if g.cfg.Churn > 0 {
			for i := range d.flows {
				if d.rng.float() < g.cfg.Churn {
					d.flows[i] = uint16(d.rng.next() % uint64(nvan))
				}
			}
		}
		clear(g.counts)
		for _, v := range d.flows {
			g.counts[v]++
		}
		for vi := 0; vi < nvan; vi++ {
			n := g.counts[vi]
			if n == 0 {
				continue
			}
			// Forward leg: n user packets from the vantage toward the
			// destination.
			fwdDelivered := int64(0)
			for _, r := range g.forwardN(g.hubs[vi], dataplane.Packet{Src: g.srcs[vi], Dst: d.addr}, n) {
				if r.Delivered() {
					fwdDelivered++
				} else {
					rep.LostByReason[r.Reason]++
				}
			}
			rep.Packets += n
			// Reply leg, only for flows whose forward packet arrived.
			// This is where reverse-path failures show up.
			served := int64(0)
			if fwdDelivered > 0 {
				for _, r := range g.forwardN(d.hub, dataplane.Packet{Src: d.addr, Dst: g.srcs[vi]}, fwdDelivered) {
					if r.Delivered() {
						served++
					} else {
						rep.LostByReason[r.Reason]++
					}
				}
				rep.Packets += fwdDelivered
			}
			rep.Flows += n
			rep.Served += served
		}
	}
	rep.Lost = rep.Flows - rep.Served
	rep.UserSecondsLost = rep.Lost * epochSecs

	g.epoch++
	g.obs.epochs.Inc()
	g.obs.served.Add(rep.Served)
	g.obs.lost.Add(rep.Lost)
	g.obs.packets.Add(rep.Packets)
	for r := dataplane.NoRoute; r <= dataplane.ForwardLoop; r++ {
		g.obs.userSeconds[r].Add(rep.LostByReason[r] * epochSecs)
	}
	if g.journal.Enabled() {
		g.journal.Record(g.clk.Now(), "traffic", "epoch",
			obs.F("epoch", rep.Epoch),
			obs.F("flows", rep.Flows),
			obs.F("served", rep.Served),
			obs.F("lost", rep.Lost),
			obs.F("user_seconds_lost", rep.UserSecondsLost))
	}
	return rep
}

// forwardN pushes n copies of pkt into the plane at from and returns the
// results, in a buffer reused across calls. In batched mode all n packets
// go through one ForwardBatch call, which collapses them to a single walk;
// SinglePacket mode pays the full walk per packet.
func (g *Generator) forwardN(from topo.RouterID, pkt dataplane.Packet, n int64) []dataplane.Result {
	g.pkts = g.pkts[:0]
	for i := int64(0); i < n; i++ {
		g.pkts = append(g.pkts, pkt)
	}
	if g.cfg.SinglePacket {
		g.res = g.res[:0]
		for _, p := range g.pkts {
			g.res = append(g.res, g.plane.Forward(from, p))
		}
		return g.res
	}
	g.res = g.plane.ForwardBatch(from, g.pkts, g.res[:0])
	return g.res
}
