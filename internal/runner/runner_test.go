package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, par := range []int{1, 2, 8, 0} {
		got, err := Map(context.Background(), 50, Config{Parallelism: par},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// The core contract: a deterministic reduction over trial results is
// byte-identical at every parallelism level.
func TestReduceByteIdenticalAcrossParallelism(t *testing.T) {
	run := func(par int) string {
		out, err := Reduce(context.Background(), 37, Config{Parallelism: par}, "",
			func(_ context.Context, i int) (string, error) {
				return fmt.Sprintf("<%d:%d>", i, i*7%13), nil
			},
			func(acc string, _ int, v string) string { return acc + v })
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		return out
	}
	want := run(1)
	for _, par := range []int{2, 4, 16} {
		if got := run(par); got != want {
			t.Fatalf("parallel=%d output diverged:\n%q\nvs sequential\n%q", par, got, want)
		}
	}
}

func TestPanicCapturedWithStack(t *testing.T) {
	for _, par := range []int{1, 4} {
		_, err := Map(context.Background(), 8, Config{Parallelism: par},
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic("boom at three")
				}
				return i, nil
			})
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("parallel=%d: want *TrialError, got %v", par, err)
		}
		if te.Trial != 3 {
			t.Fatalf("parallel=%d: blamed trial %d, want 3", par, te.Trial)
		}
		if !strings.Contains(te.Err.Error(), "boom at three") {
			t.Fatalf("parallel=%d: panic value lost: %v", par, te.Err)
		}
		if len(te.Stack) == 0 || !strings.Contains(string(te.Stack), "runner_test.go") {
			t.Fatalf("parallel=%d: no usable stack captured:\n%s", par, te.Stack)
		}
	}
}

func TestErrorPrefersLowestIndexedRealFailure(t *testing.T) {
	// Trials 5 and 11 both fail. The reported failure must be one of
	// them — never a "context canceled" echo from a trial that was
	// abandoned because of the real failure.
	for rep := 0; rep < 10; rep++ {
		_, err := Map(context.Background(), 12, Config{Parallelism: 4},
			func(_ context.Context, i int) (int, error) {
				if i == 5 || i == 11 {
					return 0, fmt.Errorf("fail %d", i)
				}
				return i, nil
			})
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("want *TrialError, got %v", err)
		}
		if te.Trial != 5 && te.Trial != 11 {
			t.Fatalf("blamed trial %d, want 5 or 11", te.Trial)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("surfaced a cancellation echo instead of the failure: %v", err)
		}
	}
}

func TestErrorCancelsRemainingTrials(t *testing.T) {
	var started atomic.Int64
	_, err := Map(context.Background(), 1000, Config{Parallelism: 2},
		func(_ context.Context, i int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, errors.New("fail fast")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d trials started", n)
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, Config{Parallelism: 4},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTrialTimeout(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	_, err := Map(context.Background(), 4, Config{Parallelism: 2, Timeout: 20 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			if i == 2 {
				select { // a stuck simulation that at least observes ctx
				case <-hang:
				case <-ctx.Done():
				}
			}
			return i, nil
		})
	var te *TrialError
	if !errors.As(err, &te) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("want TrialError wrapping ErrTimeout, got %v", err)
	}
	if te.Trial != 2 {
		t.Fatalf("blamed trial %d, want 2", te.Trial)
	}
}

func TestTimeoutGenerousEnoughPasses(t *testing.T) {
	got, err := Map(context.Background(), 8, Config{Parallelism: 4, Timeout: 10 * time.Second},
		func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 8 {
		t.Fatalf("results corrupted under timeout mode: %v", got)
	}
}

func TestZeroTrials(t *testing.T) {
	got, err := Map(context.Background(), 0, Config{},
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestWorkersClamped(t *testing.T) {
	if w := (Config{Parallelism: 100}).workers(3); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
	if w := (Config{Parallelism: -1}).workers(1000); w < 1 {
		t.Fatalf("workers = %d, want >= 1", w)
	}
}
