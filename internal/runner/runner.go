// Package runner is a deterministic fan-out executor for seed-indexed
// trials. Every experiment in this repo decomposes into independent,
// single-threaded, seed-determined simulations; the runner executes those
// trials on a bounded worker pool and hands the results back in strict
// trial-index order, so any reduction layered on top produces output
// byte-identical to a sequential run.
//
// The determinism contract:
//
//   - A trial must be a pure function of its index (plus whatever the
//     caller closed over): it builds its own simulated state — topology,
//     engine, simclock — and never shares mutable state with another
//     trial. Each trial therefore runs single-threaded on one worker, and
//     the simclock single-ownership invariant holds per trial.
//   - Map returns results indexed by trial, regardless of completion
//     order. Reduce folds them 0..n-1. Parallelism changes wall-clock
//     time and nothing else.
//   - A panicking trial is captured as a *TrialError carrying the panic
//     value and stack; the first (lowest-indexed) real failure is
//     returned after the pool drains, and the surrounding context is
//     cancelled so unstarted trials are skipped.
//
// On failure the *set of attempted trials* is scheduling-dependent (later
// trials may or may not have started before cancellation), but the
// returned error prefers the lowest-indexed non-cancellation failure, and
// trial functions are deterministic, so a given failing workload reports
// the same root cause run to run.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"lifeguard/internal/obs"
)

// ErrTimeout marks a trial that exceeded Config.Timeout.
var ErrTimeout = errors.New("trial timed out")

// Config bounds the pool.
type Config struct {
	// Parallelism is the worker count; <= 0 means GOMAXPROCS. With
	// Parallelism 1 trials run sequentially on the calling goroutine —
	// the reference execution every parallel run must be byte-identical
	// to.
	Parallelism int
	// Timeout is the per-trial wall-clock budget; 0 means none. A
	// simulation cannot be preempted mid-event, so a timed-out trial's
	// goroutine is abandoned (it finishes into the void) and the trial
	// is reported as a *TrialError wrapping ErrTimeout.
	Timeout time.Duration
	// Obs, when non-nil, receives process-level runner metrics: trial
	// counts and per-trial wall-clock durations. These measure the host
	// machine, not the simulation, so they belong in a process registry —
	// never in the deterministic per-trial registries that experiments
	// merge.
	Obs *obs.Registry
}

// runnerObs holds the pool's metric handles; the zero value (all-nil) is
// the uninstrumented state.
type runnerObs struct {
	trials   *obs.Counter
	failures *obs.Counter
	seconds  *obs.Histogram
}

// trialSecondsBuckets spans quick unit-style trials through multi-minute
// suite simulations.
var trialSecondsBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}

func newRunnerObs(reg *obs.Registry) runnerObs {
	reg.Describe("lifeguard_runner_trials_total",
		"trials executed by the pool (including failed ones)")
	reg.Describe("lifeguard_runner_trial_failures_total",
		"trials that returned an error, panicked, or timed out")
	reg.Describe("lifeguard_runner_trial_seconds",
		"per-trial wall-clock duration in seconds (host time, not sim time)")
	return runnerObs{
		trials:   reg.Counter("lifeguard_runner_trials_total"),
		failures: reg.Counter("lifeguard_runner_trial_failures_total"),
		seconds:  reg.Histogram("lifeguard_runner_trial_seconds", trialSecondsBuckets),
	}
}

// Workers reports the effective worker ceiling: Parallelism, or
// GOMAXPROCS when unset.
func (c Config) Workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) workers(n int) int {
	w := c.Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TrialError is the typed failure of one trial: an error return, a
// captured panic (Stack non-nil), a timeout, or a cancellation.
type TrialError struct {
	// Trial is the failing trial's index.
	Trial int
	// Err is the underlying cause: the trial's returned error, a
	// panic wrapped as an error, ErrTimeout, or a context error.
	Err error
	// Stack is the goroutine stack captured at the panic site; nil for
	// non-panic failures.
	Stack []byte
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("runner: trial %d: %v", e.Trial, e.Err)
}

func (e *TrialError) Unwrap() error { return e.Err }

// Map runs trials 0..n-1 on the pool and returns their results indexed by
// trial. On failure it returns the lowest-indexed non-cancellation error
// (always a *TrialError) along with whatever results completed.
func Map[T any](ctx context.Context, n int, cfg Config, trial func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	if n < 0 {
		panic(fmt.Sprintf("runner: negative trial count %d", n))
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)

	ro := newRunnerObs(cfg.Obs)
	workers := cfg.workers(n)
	if workers == 1 {
		// Sequential reference path: no goroutines, stop at the first
		// failure exactly like a plain loop would.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, fmt.Errorf("runner: %w", err)
			}
			v, err := runTrial(ctx, cfg.Timeout, ro, i, trial)
			results[i] = v
			if err != nil {
				return results, err
			}
		}
		return results, nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				v, err := runTrial(poolCtx, cfg.Timeout, ro, i, trial)
				// Distinct indices per trial: no write overlaps.
				results[i] = v
				errs[i] = err
				if err != nil {
					cancel() // stop feeding new trials
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case <-poolCtx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	if err := firstError(errs); err != nil {
		return results, err
	}
	if err := ctx.Err(); err != nil {
		// The parent context died before every trial was dispatched.
		return results, fmt.Errorf("runner: %w", err)
	}
	return results, nil
}

// Reduce runs the trials via Map and folds the results in strict trial
// order: acc = merge(acc, i, result[i]) for i = 0..n-1. Because the fold
// order is fixed, any deterministic merge yields output byte-identical to
// a sequential run at every parallelism level.
func Reduce[A, T any](ctx context.Context, n int, cfg Config, init A, trial func(ctx context.Context, trial int) (T, error), merge func(acc A, trial int, v T) A) (A, error) {
	vals, err := Map(ctx, n, cfg, trial)
	if err != nil {
		return init, err
	}
	acc := init
	for i, v := range vals {
		acc = merge(acc, i, v)
	}
	return acc, nil
}

// firstError picks the error to surface: the lowest-indexed failure that
// is not itself a cancellation echo (trials abandoned because some other
// trial already failed), falling back to the lowest-indexed failure of
// any kind.
func firstError(errs []error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}

// runTrial executes one trial with panic capture and, when configured,
// a wall-clock watchdog.
func runTrial[T any](ctx context.Context, timeout time.Duration, ro runnerObs, i int, trial func(ctx context.Context, trial int) (T, error)) (v T, err error) {
	start := time.Now()
	defer func() {
		ro.trials.Inc()
		if err != nil {
			ro.failures.Inc()
		}
		ro.seconds.Observe(time.Since(start).Seconds())
	}()
	type outcome struct {
		v   T
		err error
	}
	exec := func(ctx context.Context) (out outcome) {
		defer func() {
			if r := recover(); r != nil {
				out.err = &TrialError{
					Trial: i,
					Err:   fmt.Errorf("panic: %v", r),
					Stack: debug.Stack(),
				}
			}
		}()
		v, err := trial(ctx, i)
		if err != nil {
			err = &TrialError{Trial: i, Err: err}
		}
		return outcome{v: v, err: err}
	}

	if timeout <= 0 {
		o := exec(ctx)
		return o.v, o.err
	}

	trialCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan outcome, 1) // buffered: an abandoned trial never blocks
	go func() { done <- exec(trialCtx) }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var zero T
	select {
	case o := <-done:
		return o.v, o.err
	case <-timer.C:
		cancel()
		return zero, &TrialError{Trial: i, Err: fmt.Errorf("%w after %v", ErrTimeout, timeout)}
	case <-ctx.Done():
		return zero, &TrialError{Trial: i, Err: ctx.Err()}
	}
}
