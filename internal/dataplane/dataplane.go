// Package dataplane forwards packets hop-by-hop over the router graph,
// driven by the BGP engine's instantaneous RIBs. Its defining feature is the
// failure injector: rules that silently drop matching packets at an AS, a
// router, or a (directed) link while leaving the control plane untouched —
// the "router advertises a route but fails to deliver packets" condition the
// paper studies. Unidirectional failures are expressed by scoping a rule to
// a destination prefix or direction, which is what makes traceroute mislead
// and LIFEGUARD's spoofed-probe isolation necessary.
package dataplane

import (
	"fmt"
	"net/netip"

	"lifeguard/internal/bgp"
	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
)

// RIB is the routing state the data plane consults; *bgp.Engine satisfies it.
type RIB interface {
	Lookup(asn topo.ASN, addr netip.Addr) (*bgp.Route, bool)
}

// DropReason explains why a packet stopped.
type DropReason int

// Reason is the historical name of DropReason, kept for callers predating
// the traffic subsystem.
type Reason = DropReason

// Packet outcomes. New reasons are appended — the numeric values of
// existing reasons are part of the accounting compatibility surface, and
// the drops-by-reason counter array in planeObs must grow with the enum
// (TestDropCountersCoverEveryReason pins that).
const (
	Delivered DropReason = iota
	NoRoute              // an on-path AS had no route to the destination
	Blackhole            // matched a failure rule
	TTLExpired
	ForwardLoop // forwarding loop guard (beyond TTL accounting)
)

// String names the reason. Unknown values render as "dropreason(N)" —
// stable across enum growth, so forward-compatible consumers can log them
// without aliasing distinct unknown reasons to one string.
func (r DropReason) String() string {
	switch r {
	case Delivered:
		return "delivered"
	case NoRoute:
		return "no-route"
	case Blackhole:
		return "blackhole"
	case TTLExpired:
		return "ttl-expired"
	case ForwardLoop:
		return "forward-loop"
	default:
		return fmt.Sprintf("dropreason(%d)", int(r))
	}
}

// Packet is a forwarded datagram. Src is the claimed source address and is
// spoofable: forwarding consults only Dst, but replies go to Src.
type Packet struct {
	Src netip.Addr
	Dst netip.Addr
	TTL int // hops remaining; 0 means the default of 64
}

// DefaultTTL is used when Packet.TTL is zero.
const DefaultTTL = 64

// Hop records one router the packet transited.
type Hop struct {
	Router topo.RouterID
	AS     topo.ASN
	Addr   netip.Addr
}

// Result reports a packet's fate. Hops lists every router traversed, in
// order, up to and including the router where the packet stopped.
type Result struct {
	Reason DropReason
	Hops   []Hop
	// LastAS/LastRouter locate where the packet stopped (delivery router
	// for Delivered, drop point otherwise). Valid when len(Hops) > 0.
	LastAS     topo.ASN
	LastRouter topo.RouterID
}

// Delivered reports whether the packet reached its destination.
func (r *Result) Delivered() bool { return r.Reason == Delivered }

// String renders the fate on one line: the reason, where the packet
// stopped, and how many hops it took to get there.
func (r *Result) String() string {
	if len(r.Hops) == 0 {
		return r.Reason.String()
	}
	return fmt.Sprintf("%s at AS%d (router %d) after %d hops",
		r.Reason, r.LastAS, r.LastRouter, len(r.Hops))
}

// ASPath returns the distinct ASes traversed, in order.
func (r *Result) ASPath() topo.Path {
	var p topo.Path
	for _, h := range r.Hops {
		if len(p) == 0 || p[len(p)-1] != h.AS {
			p = append(p, h.AS)
		}
	}
	return p
}

// FailureID names an installed failure rule.
type FailureID int

// Rule describes one silent data-plane failure. Zero-valued matchers are
// wildcards; a rule drops a packet when all its non-zero matchers agree.
type Rule struct {
	// AtAS drops packets forwarded by any router of this AS.
	AtAS topo.ASN
	// AtRouter drops packets transiting one router (HasRouter gates it,
	// since RouterID 0 is valid).
	AtRouter  topo.RouterID
	HasRouter bool
	// FromRouter/ToRouter drop packets crossing a specific router link in
	// that direction.
	FromRouter, ToRouter topo.RouterID
	HasLink              bool
	// FromAS/ToAS drop packets crossing any border link from FromAS to
	// ToAS (directed AS-level link failure; install the mirror rule too
	// for a bidirectional failure).
	FromAS, ToAS topo.ASN
	// DstWithin/SrcWithin restrict the rule to matching destinations or
	// (claimed) sources. This is how unidirectional AS failures are
	// expressed: "AS X drops everything destined to prefix P".
	DstWithin, SrcWithin netip.Prefix
	// TransitOnly exempts packets destined to the failed AS itself, for
	// modelling faults that only affect through-traffic.
	TransitOnly bool
	// DropProb, when in (0, 1), makes the rule probabilistic: a matching
	// packet is dropped only for that fraction of packets. The decision is
	// a pure hash of (ProbSeed, per-packet sequence number), so a run is
	// still a deterministic replay — the same packet stream meets the same
	// fate regardless of rule iteration order or how many routers of the
	// matched AS the packet crosses. Zero means always drop (the classic
	// deterministic rule); >= 1 also always drops.
	DropProb float64
	// ProbSeed decorrelates concurrent probabilistic rules; two rules with
	// different seeds drop independent packet subsets.
	ProbSeed uint64
}

// BlackholeAS returns a rule dropping all traffic forwarded by asn.
func BlackholeAS(asn topo.ASN) Rule { return Rule{AtAS: asn} }

// BlackholeASTowards returns a rule where asn silently drops traffic
// destined to dst — the canonical unidirectional ("reverse path") failure.
func BlackholeASTowards(asn topo.ASN, dst netip.Prefix) Rule {
	return Rule{AtAS: asn, DstWithin: dst}
}

// BlackholeRouter returns a rule dropping all traffic through one router.
func BlackholeRouter(id topo.RouterID) Rule {
	return Rule{AtRouter: id, HasRouter: true}
}

// DropASLink returns a rule dropping traffic crossing from AS a to AS b.
func DropASLink(a, b topo.ASN) Rule { return Rule{FromAS: a, ToAS: b} }

// DropRouterLink returns a rule dropping traffic crossing the router link
// a→b.
func DropRouterLink(a, b topo.RouterID) Rule {
	return Rule{FromRouter: a, ToRouter: b, HasLink: true}
}

// LossyAS returns a probabilistic rule: asn drops each forwarded packet
// independently with probability prob (seed decorrelates concurrent lossy
// rules). See Rule.DropProb for the determinism contract.
func LossyAS(asn topo.ASN, prob float64, seed uint64) Rule {
	return Rule{AtAS: asn, DropProb: prob, ProbSeed: seed}
}

// Plane forwards packets. It is cheap to construct and holds no per-packet
// state, so a single Plane serves an entire simulation.
type Plane struct {
	top      *topo.Topology
	rib      RIB
	failures map[FailureID]Rule
	nextID   FailureID
	// seq numbers every packet injected via Forward; probabilistic rules
	// hash it so their verdicts are per-packet, order-independent pure
	// functions (see Rule.DropProb).
	seq uint64
	// pathCache memoizes intraPath results. Intra-AS shortest paths are a
	// pure function of the immutable topology, and probes re-walk the same
	// router pairs constantly, so the BFS (and its per-hop allocations)
	// runs once per pair for the lifetime of the plane. The simulation
	// core is single-goroutine, like the engine it consults.
	pathCache map[[2]topo.RouterID][]topo.RouterID
	// batch is ForwardBatch's per-call scratch (see batch.go).
	batch batchState

	obs planeObs
}

// planeObs holds the plane's metric handles; all nil (one branch per
// packet) until Instrument is called.
type planeObs struct {
	forwarded *obs.Counter
	// drops is indexed by Reason; the Delivered slot stays nil.
	drops [ForwardLoop + 1]*obs.Counter
}

// Instrument registers the plane's metrics: packets injected, and drops
// broken down by reason (no-route, blackhole, ttl-expired, forward-loop).
// Counting happens outside the forwarding walk, so instrumented and
// uninstrumented planes forward identically.
func (pl *Plane) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_dataplane_packets_forwarded_total", "packets injected into the data plane")
	reg.Describe("lifeguard_dataplane_packets_dropped_total", "packets that did not reach their destination, by reason")
	pl.obs.forwarded = reg.Counter("lifeguard_dataplane_packets_forwarded_total")
	for r := NoRoute; r <= ForwardLoop; r++ {
		pl.obs.drops[r] = reg.Counter("lifeguard_dataplane_packets_dropped_total", obs.L("reason", r.String()))
	}
}

// New returns a data plane over the topology, consulting rib at each AS.
func New(top *topo.Topology, rib RIB) *Plane {
	return &Plane{
		top:       top,
		rib:       rib,
		failures:  make(map[FailureID]Rule),
		pathCache: make(map[[2]topo.RouterID][]topo.RouterID),
	}
}

// AddFailure installs a failure rule and returns its handle.
//
// ID lifecycle contract: FailureIDs are allocated from a counter that is
// monotone over the Plane's whole lifetime. Neither RemoveFailure nor
// ClearFailures ever recycles an ID, so a stale handle kept across heavy
// inject/heal churn (the chaos engine's steady state) can never silently
// alias a newer, unrelated rule — RemoveFailure on a freed ID reports
// false forever. dataplane's TestFailureIDsNeverReused pins this.
func (pl *Plane) AddFailure(r Rule) FailureID {
	pl.nextID++
	pl.failures[pl.nextID] = r
	return pl.nextID
}

// RemoveFailure uninstalls a rule; it reports whether the rule existed.
// The freed ID is retired, never reused (see AddFailure).
func (pl *Plane) RemoveFailure(id FailureID) bool {
	if _, ok := pl.failures[id]; !ok {
		return false
	}
	delete(pl.failures, id)
	return true
}

// ClearFailures removes all rules. The ID counter is not reset: handles
// freed here stay retired (see AddFailure).
func (pl *Plane) ClearFailures() { clear(pl.failures) }

// Failure returns the rule installed under id, if it is still active.
// Chaos healing uses it to verify a handle names the rule the caller
// thinks it does before removing it.
func (pl *Plane) Failure(id FailureID) (Rule, bool) {
	r, ok := pl.failures[id]
	return r, ok
}

// ActiveFailures reports the number of installed rules.
func (pl *Plane) ActiveFailures() int { return len(pl.failures) }

// matchCtx carries the packet context rules are evaluated against.
type matchCtx struct {
	pkt   Packet
	dstAS topo.ASN // owner of the destination address block
	seq   uint64   // per-packet sequence number for probabilistic rules
}

func (pl *Plane) dropAtRouter(c *matchCtx, r topo.RouterID) bool {
	as := pl.top.Router(r).AS
	for _, rule := range pl.failures {
		if rule.HasLink || (rule.FromAS != 0 || rule.ToAS != 0) {
			continue // link rules checked at crossings
		}
		if rule.AtAS != 0 && rule.AtAS != as {
			continue
		}
		if rule.HasRouter && rule.AtRouter != r {
			continue
		}
		if rule.AtAS == 0 && !rule.HasRouter {
			continue // empty rule matches nothing
		}
		if !rule.pktMatch(c) {
			continue
		}
		if rule.TransitOnly && c.dstAS == as {
			continue
		}
		return true
	}
	return false
}

func (pl *Plane) dropAtCrossing(c *matchCtx, from, to topo.RouterID) bool {
	fromAS, toAS := pl.top.Router(from).AS, pl.top.Router(to).AS
	for _, rule := range pl.failures {
		switch {
		case rule.HasLink:
			if rule.FromRouter != from || rule.ToRouter != to {
				continue
			}
		case rule.FromAS != 0 || rule.ToAS != 0:
			if rule.FromAS != fromAS || rule.ToAS != toAS {
				continue
			}
		default:
			continue
		}
		if !rule.pktMatch(c) {
			continue
		}
		return true
	}
	return false
}

func (r *Rule) pktMatch(c *matchCtx) bool {
	if r.DstWithin.IsValid() && !r.DstWithin.Contains(c.pkt.Dst) {
		return false
	}
	if r.SrcWithin.IsValid() && !r.SrcWithin.Contains(c.pkt.Src) {
		return false
	}
	if r.DropProb > 0 && r.DropProb < 1 {
		// Threshold comparison on a hash of (seed, packet seq) mapped to
		// [0, 1): deterministic per packet, independent across rules with
		// different seeds, and identical at every router the packet
		// crosses (per-packet loss, not per-hop loss).
		u := float64(splitmix64(r.ProbSeed^c.seq)>>11) / (1 << 53)
		return u < r.DropProb
	}
	return true
}

// splitmix64 is the SplitMix64 finalizer — a cheap, high-quality bijective
// hash used to turn (rule seed, packet sequence) into a drop verdict.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Forward injects pkt at router "from" (the sender's gateway) and walks it
// to its fate. The sender's own router does not consume TTL.
func (pl *Plane) Forward(from topo.RouterID, pkt Packet) Result {
	res := pl.forward(from, pkt)
	pl.obs.forwarded.Inc()
	if res.Reason != Delivered {
		pl.obs.drops[res.Reason].Inc()
	}
	return res
}

func (pl *Plane) forward(from topo.RouterID, pkt Packet) Result {
	ttl := pkt.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	pl.seq++
	c := &matchCtx{pkt: pkt, seq: pl.seq}
	if owner, ok := topo.OwnerOf(pkt.Dst); ok {
		c.dstAS = owner
	}

	// One up-front block sized for typical inter-domain walks keeps hop
	// recording to a single allocation for almost every packet.
	res := Result{Hops: make([]Hop, 0, 16)}
	cur := from
	first := true
	step := func(r topo.RouterID) Reason {
		// Record the hop, spend TTL, apply router-scoped rules.
		rt := pl.top.Router(r)
		res.Hops = append(res.Hops, Hop{Router: r, AS: rt.AS, Addr: rt.Addr})
		res.LastAS, res.LastRouter = rt.AS, r
		if !first {
			ttl--
			if ttl <= 0 {
				return TTLExpired
			}
		}
		first = false
		if pl.dropAtRouter(c, r) {
			return Blackhole
		}
		return Delivered
	}

	if rsn := step(cur); rsn != Delivered {
		res.Reason = rsn
		return res
	}

	for {
		if len(res.Hops) > 4*DefaultTTL {
			res.Reason = ForwardLoop
			return res
		}
		curAS := pl.top.Router(cur).AS
		route, ok := pl.rib.Lookup(curAS, pkt.Dst)
		if !ok {
			res.Reason = NoRoute
			return res
		}
		if route.Originated {
			// Local delivery: walk to the destination router, or to
			// the AS hub standing in for prefix-hosted addresses.
			target := pl.hostRouter(curAS, pkt.Dst)
			for _, r := range pl.intraPath(cur, target) {
				if rsn := step(r); rsn != Delivered {
					res.Reason = rsn
					return res
				}
			}
			res.Reason = Delivered
			return res
		}
		nextAS, _ := route.NextHop()
		borders := pl.top.BorderRouters(curAS, nextAS)
		if len(borders) == 0 {
			panic(fmt.Sprintf("dataplane: AS %d routes to non-adjacent AS %d", curAS, nextAS))
		}
		egress, ingress := borders[0][0], borders[0][1]
		for _, r := range pl.intraPath(cur, egress) {
			if rsn := step(r); rsn != Delivered {
				res.Reason = rsn
				return res
			}
		}
		if pl.dropAtCrossing(c, egress, ingress) {
			res.Reason = Blackhole
			return res
		}
		if rsn := step(ingress); rsn != Delivered {
			res.Reason = rsn
			return res
		}
		cur = ingress
	}
}

// hostRouter resolves the router that terminates dst inside asn: the exact
// router if dst is an interface address, otherwise the AS hub (first
// router), which stands in for hosts of announced prefixes.
func (pl *Plane) hostRouter(asn topo.ASN, dst netip.Addr) topo.RouterID {
	if r, ok := pl.top.RouterByAddr(dst); ok && r.AS == asn {
		return r.ID
	}
	as := pl.top.AS(asn)
	if len(as.Routers) == 0 {
		panic(fmt.Sprintf("dataplane: AS %d has no routers", asn))
	}
	return as.Routers[0]
}

// intraPath returns the routers strictly after "from" on the shortest
// intra-AS path from → to (empty when from == to). BFS over intra-AS links;
// ties break by adjacency order, which is fixed at Build time. Results are
// memoized in pathCache; callers iterate the returned slice but must not
// mutate it.
func (pl *Plane) intraPath(from, to topo.RouterID) []topo.RouterID {
	if from == to {
		return nil
	}
	key := [2]topo.RouterID{from, to}
	if p, ok := pl.pathCache[key]; ok {
		return p
	}
	asn := pl.top.Router(from).AS
	if pl.top.Router(to).AS != asn {
		panic("dataplane: intraPath across ASes")
	}
	prev := map[topo.RouterID]topo.RouterID{from: from}
	queue := []topo.RouterID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			break
		}
		for _, n := range pl.top.RouterNeighbors(cur) {
			if pl.top.Router(n).AS != asn {
				continue
			}
			if _, seen := prev[n]; !seen {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if _, ok := prev[to]; !ok {
		panic(fmt.Sprintf("dataplane: no intra-AS path %d -> %d in AS %d", from, to, asn))
	}
	var rev []topo.RouterID
	for cur := to; cur != from; cur = prev[cur] {
		rev = append(rev, cur)
	}
	out := make([]topo.RouterID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	pl.pathCache[key] = out
	return out
}
