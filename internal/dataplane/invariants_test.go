package dataplane

import (
	"math/rand"
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// TestForwardingMatchesControlPlane checks the defining data-plane
// invariant: with no failures installed, every delivered packet's AS-level
// trajectory equals the sender's RIB path (poison tokens excluded), and
// every packet toward a routable destination is delivered.
func TestForwardingMatchesControlPlane(t *testing.T) {
	res, err := topogen.Generate(topogen.Config{Seed: 11, NumTransit: 20, NumStub: 60})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 11})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		t.Fatal("no convergence")
	}
	pl := New(res.Top, eng)
	rng := rand.New(rand.NewSource(77))
	all := res.Top.ASNs()
	for trial := 0; trial < 300; trial++ {
		src := all[rng.Intn(len(all))]
		dst := all[rng.Intn(len(all))]
		if src == dst {
			continue
		}
		dstAddr := res.Top.Router(res.Top.AS(dst).Routers[0]).Addr
		rib := eng.ASPathTo(src, dstAddr)
		if rib == nil {
			t.Fatalf("AS%d has no route to AS%d", src, dst)
		}
		resl := pl.Forward(res.Top.AS(src).Routers[0], Packet{Dst: dstAddr})
		if !resl.Delivered() {
			t.Fatalf("AS%d -> AS%d not delivered: %v", src, dst, resl.Reason)
		}
		// Expected AS trajectory: src, then the RIB path's transit hops
		// up to (and including) the origin.
		want := topo.Path{src}
		for _, a := range rib {
			want = append(want, a)
			if a == dst {
				break
			}
		}
		if got := resl.ASPath(); !got.Equal(want) {
			t.Fatalf("AS%d -> AS%d walked %v, RIB says %v", src, dst, got, want)
		}
	}
}

// TestTTLAccounting checks that hop counts are consistent: a packet with
// TTL exactly len(hops)-1 delivers, one less expires.
func TestTTLAccounting(t *testing.T) {
	res, err := topogen.Generate(topogen.Config{Seed: 12, NumTransit: 15, NumStub: 40})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 12})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	eng.Converge(500_000_000)
	pl := New(res.Top, eng)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		src := res.Stubs[rng.Intn(len(res.Stubs))]
		dst := res.Stubs[rng.Intn(len(res.Stubs))]
		if src == dst {
			continue
		}
		dstAddr := res.Top.Router(res.Top.AS(dst).Routers[0]).Addr
		full := pl.Forward(res.Top.AS(src).Routers[0], Packet{Dst: dstAddr})
		if !full.Delivered() {
			t.Fatalf("baseline not delivered: %v", full.Reason)
		}
		need := len(full.Hops) - 1 // source router spends no TTL
		if res := pl.Forward(res.Top.AS(src).Routers[0], Packet{Dst: dstAddr, TTL: need + 1}); !res.Delivered() {
			t.Fatalf("TTL %d should deliver (%d hops)", need+1, len(full.Hops))
		}
		if res := pl.Forward(res.Top.AS(src).Routers[0], Packet{Dst: dstAddr, TTL: need - 1}); res.Reason != TTLExpired {
			t.Fatalf("TTL %d should expire, got %v", need-1, res.Reason)
		}
	}
}
