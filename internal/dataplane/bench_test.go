package dataplane

import (
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// BenchmarkDataplaneForward measures an end-to-end packet walk across a ~100-AS
// internetwork — the primitive under every probe.
func BenchmarkDataplaneForward(b *testing.B) {
	res, err := topogen.Generate(topogen.Config{Seed: 1, NumTransit: 25, NumStub: 80})
	if err != nil {
		b.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 1})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		b.Fatal("no convergence")
	}
	pl := New(res.Top, eng)
	src := res.Top.AS(res.Stubs[0]).Routers[0]
	var dsts []Packet
	for i, s := range res.Stubs[1:] {
		if i%4 == 0 {
			dsts = append(dsts, Packet{Dst: res.Top.Router(res.Top.AS(s).Routers[0]).Addr})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := pl.Forward(src, dsts[i%len(dsts)]); !res.Delivered() {
			b.Fatalf("not delivered: %v", res.Reason)
		}
	}
}

// BenchmarkDataplaneForwardWithFailures measures the same walk with a rule table
// installed (the matching cost probes pay during failure experiments).
func BenchmarkDataplaneForwardWithFailures(b *testing.B) {
	res, err := topogen.Generate(topogen.Config{Seed: 1, NumTransit: 25, NumStub: 80})
	if err != nil {
		b.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 1})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	eng.Converge(500_000_000)
	pl := New(res.Top, eng)
	// Ten rules that never match the benched traffic.
	for i := 0; i < 10; i++ {
		pl.AddFailure(BlackholeASTowards(res.Stubs[len(res.Stubs)-1-i], topo.Block(res.Stubs[i])))
	}
	src := res.Top.AS(res.Stubs[0]).Routers[0]
	dst := res.Top.Router(res.Top.AS(res.Stubs[40]).Routers[0]).Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Forward(src, Packet{Dst: dst})
	}
}

// BenchmarkDataplaneForwardBatch measures the amortized per-packet cost of
// ForwardBatch on flow-group shaped traffic: batches of 1024 packets spread
// over 16 destinations (64 packets per flow group, the duplication the
// traffic engine produces every epoch). Reported ns/op is per packet, so
// the ratio to BenchmarkDataplaneForward is the batching win.
func BenchmarkDataplaneForwardBatch(b *testing.B) {
	res, err := topogen.Generate(topogen.Config{Seed: 1, NumTransit: 25, NumStub: 80})
	if err != nil {
		b.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 1})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		b.Fatal("no convergence")
	}
	pl := New(res.Top, eng)
	src := res.Top.AS(res.Stubs[0]).Routers[0]
	const batch = 1024
	pkts := make([]Packet, 0, batch)
	for i := 0; len(pkts) < batch; i++ {
		s := res.Stubs[1+(i%16)*4]
		dst := res.Top.Router(res.Top.AS(s).Routers[0]).Addr
		for c := 0; c < batch/16 && len(pkts) < batch; c++ {
			pkts = append(pkts, Packet{Src: topo.ProductionAddr(res.Stubs[0]), Dst: dst})
		}
	}
	buf := make([]Result, 0, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		buf = pl.ForwardBatch(src, pkts, buf[:0])
		if !buf[0].Delivered() {
			b.Fatalf("not delivered: %v", buf[0].Reason)
		}
	}
}
