package dataplane

import (
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// lineNet builds AS1 -> AS2 -> AS3 (customer chains) with routers, converges
// BGP with every AS originating its block, and returns the pieces.
func lineNet(t *testing.T) (*topo.Topology, *bgp.Engine, *Plane) {
	t.Helper()
	b := topo.NewBuilder()
	for asn := topo.ASN(1); asn <= 3; asn++ {
		b.AddAS(asn, "")
		b.AddRouter(asn, "") // hub
	}
	b.Provider(1, 2)
	b.Provider(2, 3)
	b.ConnectAS(1, 2)
	b.ConnectAS(2, 3)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	e := bgp.New(top, clk, bgp.Config{Seed: 1})
	for asn := topo.ASN(1); asn <= 3; asn++ {
		e.Originate(asn, topo.Block(asn))
	}
	if !e.Converge(1_000_000) {
		t.Fatal("no convergence")
	}
	return top, e, New(top, e)
}

func hub(top *topo.Topology, asn topo.ASN) topo.RouterID {
	return top.AS(asn).Routers[0]
}

func TestDeliveryAcrossLine(t *testing.T) {
	top, _, pl := lineNet(t)
	dst := top.Router(hub(top, 3)).Addr
	res := pl.Forward(hub(top, 1), Packet{Src: top.Router(hub(top, 1)).Addr, Dst: dst})
	if !res.Delivered() {
		t.Fatalf("not delivered: %v at AS%d", res.Reason, res.LastAS)
	}
	if p := res.ASPath(); !p.Equal(topo.Path{1, 2, 3}) {
		t.Fatalf("ASPath = %v", p)
	}
	if res.LastRouter != hub(top, 3) {
		t.Fatalf("delivered at router %d, want hub of AS3", res.LastRouter)
	}
}

func TestDeliveryToPrefixHostedAddr(t *testing.T) {
	top, e, pl := lineNet(t)
	e.Originate(1, topo.ProductionPrefix(1))
	e.Converge(1_000_000)
	res := pl.Forward(hub(top, 3), Packet{Dst: topo.ProductionAddr(1)})
	if !res.Delivered() || res.LastRouter != hub(top, 1) {
		t.Fatalf("res = %+v", res)
	}
}

func TestNoRoute(t *testing.T) {
	top, _, pl := lineNet(t)
	res := pl.Forward(hub(top, 1), Packet{Dst: topo.ProductionAddr(3)})
	// Block(3) covers it, so it is routable; pick an unannounced space.
	if !res.Delivered() {
		t.Fatalf("block route should cover production addr: %v", res.Reason)
	}
	res = pl.Forward(hub(top, 1), Packet{Dst: topo.RouterAddr(200, 0)})
	if res.Reason != NoRoute {
		t.Fatalf("Reason = %v, want NoRoute", res.Reason)
	}
}

func TestBlackholeASDropsTransit(t *testing.T) {
	top, _, pl := lineNet(t)
	pl.AddFailure(BlackholeAS(2))
	res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr})
	if res.Reason != Blackhole || res.LastAS != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUnidirectionalFailure(t *testing.T) {
	top, _, pl := lineNet(t)
	// AS2 silently drops traffic destined to AS1's block: the reverse
	// direction fails while the forward direction still works.
	pl.AddFailure(BlackholeASTowards(2, topo.Block(1)))
	fwd := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr})
	if !fwd.Delivered() {
		t.Fatalf("forward direction should work: %v", fwd.Reason)
	}
	rev := pl.Forward(hub(top, 3), Packet{Dst: top.Router(hub(top, 1)).Addr})
	if rev.Reason != Blackhole || rev.LastAS != 2 {
		t.Fatalf("reverse res = %+v", rev)
	}
}

func TestRemoveFailureRestores(t *testing.T) {
	top, _, pl := lineNet(t)
	id := pl.AddFailure(BlackholeAS(2))
	dst := top.Router(hub(top, 3)).Addr
	if res := pl.Forward(hub(top, 1), Packet{Dst: dst}); res.Delivered() {
		t.Fatal("failure not effective")
	}
	if !pl.RemoveFailure(id) {
		t.Fatal("RemoveFailure = false")
	}
	//lint:ignore lglint/failureid deliberately probing that removal invalidated the ID
	if pl.RemoveFailure(id) {
		t.Fatal("double remove should be false")
	}
	if res := pl.Forward(hub(top, 1), Packet{Dst: dst}); !res.Delivered() {
		t.Fatalf("still failing after removal: %v", res.Reason)
	}
}

func TestTTLExpiry(t *testing.T) {
	top, _, pl := lineNet(t)
	dst := top.Router(hub(top, 3)).Addr
	full := pl.Forward(hub(top, 1), Packet{Dst: dst})
	need := len(full.Hops) - 1 // source router doesn't consume TTL
	res := pl.Forward(hub(top, 1), Packet{Dst: dst, TTL: need - 1})
	if res.Reason != TTLExpired {
		t.Fatalf("Reason = %v, want TTLExpired", res.Reason)
	}
	if len(res.Hops) >= len(full.Hops) {
		t.Fatalf("expired path not shorter: %d vs %d", len(res.Hops), len(full.Hops))
	}
	// TTL exactly sufficient delivers.
	res = pl.Forward(hub(top, 1), Packet{Dst: dst, TTL: need + 1})
	if !res.Delivered() {
		t.Fatalf("TTL %d should deliver: %v", need+1, res.Reason)
	}
}

func TestDropASLinkDirected(t *testing.T) {
	top, _, pl := lineNet(t)
	pl.AddFailure(DropASLink(2, 3))
	if res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr}); res.Reason != Blackhole {
		t.Fatalf("1->3 should blackhole at the 2-3 crossing: %v", res.Reason)
	}
	if res := pl.Forward(hub(top, 3), Packet{Dst: top.Router(hub(top, 1)).Addr}); !res.Delivered() {
		t.Fatalf("3->1 should survive a directed 2->3 failure: %v", res.Reason)
	}
}

func TestBlackholeRouter(t *testing.T) {
	top, _, pl := lineNet(t)
	// Kill AS2's hub: transit through AS2 crosses it.
	pl.AddFailure(BlackholeRouter(hub(top, 2)))
	res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr})
	if res.Reason != Blackhole || res.LastRouter != hub(top, 2) {
		t.Fatalf("res = %+v", res)
	}
}

func TestTransitOnlyExemptsLocalDelivery(t *testing.T) {
	top, _, pl := lineNet(t)
	pl.AddFailure(Rule{AtAS: 2, TransitOnly: true})
	// To AS2 itself: delivered.
	if res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 2)).Addr}); !res.Delivered() {
		t.Fatalf("to-AS2 traffic should pass: %v", res.Reason)
	}
	// Through AS2: dropped.
	if res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr}); res.Reason != Blackhole {
		t.Fatalf("through-AS2 traffic should drop: %v", res.Reason)
	}
}

func TestSrcScopedRuleMatchesSpoofedSource(t *testing.T) {
	top, _, pl := lineNet(t)
	pl.AddFailure(Rule{AtAS: 2, SrcWithin: topo.Block(1)})
	// A packet claiming to be from AS1 drops at AS2 even when injected
	// at AS3 (the rule sees the spoofed source).
	res := pl.Forward(hub(top, 3), Packet{
		Src: topo.RouterAddr(1, 0),
		Dst: top.Router(hub(top, 2)).Addr,
	})
	if res.Reason != Blackhole {
		t.Fatalf("spoof-source packet should drop: %v", res.Reason)
	}
	res = pl.Forward(hub(top, 3), Packet{
		Src: topo.RouterAddr(3, 0),
		Dst: top.Router(hub(top, 2)).Addr,
	})
	if !res.Delivered() {
		t.Fatalf("non-matching source should pass: %v", res.Reason)
	}
}

func TestHopsTraverseBorderAndHubRouters(t *testing.T) {
	top, _, pl := lineNet(t)
	res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr})
	if !res.Delivered() {
		t.Fatal("not delivered")
	}
	// Path: hub1, bdr1-2, bdr2-1, hub2(?), bdr2-3, bdr3-2, hub3. The
	// exact count depends on BFS shortcuts, but every hop's AS must be
	// monotone 1,2,3 and both AS2 border routers must appear.
	seen := map[topo.RouterID]bool{}
	for _, h := range res.Hops {
		seen[h.Router] = true
	}
	for _, pair := range top.BorderRouters(2, 3) {
		if !seen[pair[0]] {
			t.Fatalf("egress border router %d not on path: %+v", pair[0], res.Hops)
		}
	}
	if len(res.Hops) < 5 {
		t.Fatalf("suspiciously short router path: %+v", res.Hops)
	}
}

func TestClearFailures(t *testing.T) {
	top, _, pl := lineNet(t)
	pl.AddFailure(BlackholeAS(2))
	pl.AddFailure(BlackholeRouter(hub(top, 2)))
	pl.ClearFailures()
	if res := pl.Forward(hub(top, 1), Packet{Dst: top.Router(hub(top, 3)).Addr}); !res.Delivered() {
		t.Fatalf("failures not cleared: %v", res.Reason)
	}
}
