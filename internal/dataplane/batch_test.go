package dataplane

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/obs"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// twinPlanes builds one converged ~60-AS internetwork and returns two
// fresh planes over it, so a batched and a single-packet execution of the
// same stream can be compared from identical starting states.
func twinPlanes(t testing.TB) (*topogen.Result, *Plane, *Plane) {
	t.Helper()
	res, err := topogen.Generate(topogen.Config{Seed: 7, NumTransit: 12, NumStub: 48})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	eng := bgp.New(res.Top, clk, bgp.Config{Seed: 7})
	for _, asn := range res.Top.ASNs() {
		eng.Originate(asn, topo.Block(asn))
	}
	if !eng.Converge(500_000_000) {
		t.Fatal("no convergence")
	}
	return res, New(res.Top, eng), New(res.Top, eng)
}

// batchStream builds a packet stream with heavy duplication (the flow-group
// shape the traffic engine emits) plus TTL and source variants and an
// unroutable destination, injected at the first stub's hub.
func batchStream(res *topogen.Result) (topo.RouterID, []Packet) {
	top := res.Top
	from := top.AS(res.Stubs[0]).Routers[0]
	var pkts []Packet
	for i, s := range res.Stubs[1:] {
		if i%3 != 0 {
			continue
		}
		dst := top.Router(top.AS(s).Routers[0]).Addr
		for c := 0; c < 5; c++ { // the duplicates the memo amortizes
			pkts = append(pkts, Packet{Src: topo.ProductionAddr(res.Stubs[0]), Dst: dst})
		}
		pkts = append(pkts, Packet{Src: topo.RouterAddr(res.Stubs[0], 0), Dst: dst})
		pkts = append(pkts, Packet{Src: topo.ProductionAddr(res.Stubs[0]), Dst: dst, TTL: 3})
	}
	pkts = append(pkts, Packet{Dst: topo.RouterAddr(200, 0)}) // NoRoute
	return from, pkts
}

// installRules puts a representative deterministic rule mix on both planes:
// an AS blackhole toward one prefix (the canonical reverse-path failure), a
// directed link drop, and a source-scoped rule.
func installRules(res *topogen.Result, planes ...*Plane) {
	for _, pl := range planes {
		pl.AddFailure(BlackholeASTowards(res.Transit[0], topo.Block(res.Stubs[4])))
		pl.AddFailure(DropASLink(res.Transit[1], res.Transit[2]))
		pl.AddFailure(Rule{AtAS: res.Transit[3], SrcWithin: topo.Block(res.Stubs[0])})
	}
}

// TestForwardBatchEquivalence is the committed batching contract: a batch
// produces results byte-identical to the same packets pushed one at a time
// through Forward — same fates, same hop records, same obs counters, and
// the same per-packet sequence numbering (proven by identical
// probabilistic verdicts after the batch).
func TestForwardBatchEquivalence(t *testing.T) {
	res, single, batched := twinPlanes(t)
	installRules(res, single, batched)
	regS, regB := obs.New(), obs.New()
	single.Instrument(regS)
	batched.Instrument(regB)

	from, pkts := batchStream(res)
	want := make([]Result, 0, len(pkts))
	for _, pkt := range pkts {
		want = append(want, single.Forward(from, pkt))
	}
	got := batched.ForwardBatch(from, pkts, nil)

	if len(got) != len(want) {
		t.Fatalf("batch returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("packet %d: batch %+v, single %+v", i, got[i], want[i])
		}
	}
	snapS, snapB := encodeSnapshot(t, regS), encodeSnapshot(t, regB)
	if snapS != snapB {
		t.Fatalf("obs counters diverge:\nsingle:\n%s\nbatch:\n%s", snapS, snapB)
	}

	// Sequence alignment: install the same fractional-loss rule on both
	// planes and replay a stream. Verdicts hash (seed, per-packet seq), so
	// any drift in the batch path's numbering shows up as different fates.
	for _, pl := range []*Plane{single, batched} {
		pl.AddFailure(LossyAS(res.Transit[0], 0.5, 42))
	}
	for i, pkt := range pkts {
		s := single.Forward(from, pkt)
		b := batched.Forward(from, pkt)
		if s.Reason != b.Reason {
			t.Fatalf("post-batch packet %d: seq drift (single %v, batch %v)", i, s.Reason, b.Reason)
		}
	}
}

// TestForwardBatchEquivalenceWithProbRules pins the memo stand-down: with a
// fractional DropProb rule installed, batching must still match the
// single-packet execution packet for packet (per-packet loss, not
// per-group loss).
func TestForwardBatchEquivalenceWithProbRules(t *testing.T) {
	res, single, batched := twinPlanes(t)
	for _, pl := range []*Plane{single, batched} {
		pl.AddFailure(LossyAS(res.Transit[0], 0.4, 9))
		pl.AddFailure(LossyAS(res.Transit[2], 0.2, 10))
	}
	from, pkts := batchStream(res)
	want := make([]Result, 0, len(pkts))
	for _, pkt := range pkts {
		want = append(want, single.Forward(from, pkt))
	}
	got := batched.ForwardBatch(from, pkts, nil)
	delivered := 0
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("packet %d: batch %+v, single %+v", i, got[i], want[i])
		}
		if want[i].Delivered() {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(want) {
		t.Fatalf("loss rule not exercised: %d/%d delivered", delivered, len(want))
	}
}

// TestForwardBatchReusesResultBuffer pins the recycling contract: passing
// the previous call's slice back in appends from its start without
// reallocating when capacity suffices.
func TestForwardBatchReusesResultBuffer(t *testing.T) {
	res, _, pl := twinPlanes(t)
	from, pkts := batchStream(res)
	buf := pl.ForwardBatch(from, pkts, nil)
	first := &buf[0]
	buf2 := pl.ForwardBatch(from, pkts, buf[:0])
	if len(buf2) != len(pkts) {
		t.Fatalf("recycled batch returned %d results, want %d", len(buf2), len(pkts))
	}
	if &buf2[0] != first {
		t.Fatal("recycled buffer was reallocated despite sufficient capacity")
	}
}

// encodeSnapshot renders a registry snapshot as its canonical Prometheus
// text, the byte-comparison form the obs tests use.
func encodeSnapshot(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestIntraPathAliasingContract pins the dataplane.go intraPath contract:
// the returned slice aliases the path cache (no defensive copy), so
// callers — ForwardBatch's walks included — must never mutate it. The test
// proves both halves: the cache really does hand out one backing array,
// and heavy batched forwarding leaves the cached contents untouched.
func TestIntraPathAliasingContract(t *testing.T) {
	res, _, pl := twinPlanes(t)
	from, pkts := batchStream(res)

	// Warm the cache, snapshot every cached path.
	pl.ForwardBatch(from, pkts, nil)
	if len(pl.pathCache) == 0 {
		t.Fatal("no intra-AS paths cached")
	}
	type snap struct {
		alias []topo.RouterID
		copy  []topo.RouterID
	}
	snaps := make(map[[2]topo.RouterID]snap, len(pl.pathCache))
	for key, p := range pl.pathCache {
		snaps[key] = snap{alias: p, copy: append([]topo.RouterID(nil), p...)}
	}

	// Re-querying returns the same backing array, not a copy.
	for key, s := range snaps {
		if len(s.alias) == 0 {
			continue
		}
		again := pl.intraPath(key[0], key[1])
		if &again[0] != &s.alias[0] {
			t.Fatalf("intraPath(%v) returned a copy; the contract is aliasing", key)
		}
	}

	// Batched forwarding only reads the cached paths.
	for i := 0; i < 10; i++ {
		pl.ForwardBatch(from, pkts, nil)
	}
	for key, s := range snaps {
		if !reflect.DeepEqual(s.alias, s.copy) {
			t.Fatalf("ForwardBatch mutated cached intraPath(%v): %v, was %v", key, s.alias, s.copy)
		}
	}
}

// TestDropCountersCoverEveryReason guards the drops-by-reason counter
// array against enum growth: every named DropReason must have a registered
// counter after Instrument. The reason count is discovered dynamically
// from the String fallback, so appending a reason without growing the
// planeObs array (or naming it) fails here instead of silently
// undercounting.
func TestDropCountersCoverEveryReason(t *testing.T) {
	n := 0
	for DropReason(n).String() != fmt.Sprintf("dropreason(%d)", n) {
		n++
		if n > 64 {
			t.Fatal("DropReason fallback never reached; String is broken")
		}
	}
	if n < int(ForwardLoop)+1 {
		t.Fatalf("only %d named reasons but ForwardLoop is %d", n, ForwardLoop)
	}
	if len([ForwardLoop + 1]*obs.Counter{}) != n {
		t.Fatalf("planeObs drops array holds %d slots but %d reasons are named; "+
			"grow the array (and Instrument's loop) with the enum", int(ForwardLoop)+1, n)
	}

	_, _, pl := twinPlanes(t)
	reg := obs.New()
	pl.Instrument(reg)
	if pl.obs.drops[Delivered] != nil {
		t.Fatal("Delivered slot must stay nil (delivery is not a drop)")
	}
	for r := NoRoute; int(r) < n; r++ {
		if pl.obs.drops[r] == nil {
			t.Fatalf("reason %v (%d) has no registered drop counter", r, int(r))
		}
	}
}

// TestDropReasonStringRoundTrip mirrors the EventKind.String contract:
// every defined reason has a unique stable name and unknown values render
// as "dropreason(N)".
func TestDropReasonStringRoundTrip(t *testing.T) {
	all := []DropReason{Delivered, NoRoute, Blackhole, TTLExpired, ForwardLoop}
	seen := make(map[string]DropReason, len(all))
	for _, r := range all {
		s := r.String()
		if s == "" || strings.HasPrefix(s, "dropreason(") {
			t.Fatalf("reason %d has no proper name: %q", int(r), s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("reasons %d and %d share the name %q", int(prev), int(r), s)
		}
		seen[s] = r
	}
	if next := ForwardLoop + 1; next.String() != "dropreason(5)" {
		t.Fatalf("first unknown reason renders %q, want dropreason(5)", next.String())
	}
	for _, r := range []DropReason{17, -2} {
		want := fmt.Sprintf("dropreason(%d)", int(r))
		if got := r.String(); got != want {
			t.Fatalf("DropReason(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

// TestResultString covers the one-line fate rendering.
func TestResultString(t *testing.T) {
	if got := (&Result{}).String(); got != "delivered" {
		t.Fatalf("empty result renders %q", got)
	}
	r := &Result{
		Reason:     Blackhole,
		Hops:       []Hop{{Router: 1, AS: 1}, {Router: 7, AS: 2}},
		LastAS:     2,
		LastRouter: 7,
	}
	want := "blackhole at AS2 (router 7) after 2 hops"
	if got := r.String(); got != want {
		t.Fatalf("Result.String() = %q, want %q", got, want)
	}
}
