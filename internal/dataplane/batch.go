package dataplane

import (
	"net/netip"

	"lifeguard/internal/topo"
)

// batchKey identifies the full input of one forwarding walk injected at a
// fixed router, when no probabilistic rule is installed: the walk is then a
// pure function of (from, Dst, Src, TTL) — Dst drives every LPM lookup and
// intra-AS path, Src and Dst drive rule matching, TTL bounds the walk — so
// two packets with equal keys meet byte-identical fates.
type batchKey struct {
	dst, src netip.Addr
	ttl      int
}

// batchState is the per-Plane scratch ForwardBatch reuses across calls so a
// steady state of large batches allocates nothing per packet.
type batchState struct {
	memo map[batchKey]int // packet key -> index of the first result
}

// hasProbRules reports whether any installed rule carries a fractional
// DropProb. Probabilistic verdicts hash the per-packet sequence number, so
// identical packets may meet different fates and the batch memo must stand
// down.
func (pl *Plane) hasProbRules() bool {
	for _, r := range pl.failures {
		if r.DropProb > 0 && r.DropProb < 1 {
			return true
		}
	}
	return false
}

// count folds one result into the plane's metric handles — the same
// accounting Forward performs, factored out so the memo hit path pays it
// too.
func (pl *Plane) count(res *Result) {
	pl.obs.forwarded.Inc()
	if res.Reason != Delivered {
		pl.obs.drops[res.Reason].Inc()
	}
}

// ForwardBatch injects every packet of pkts at router "from", in order, and
// returns one Result per packet, appended to res (pass nil or a recycled
// buffer; the returned slice is res resized). It is the amortized form of
// calling Forward once per packet, with a committed equivalence contract:
// the results, the obs counters, and the plane's per-packet sequence
// numbering are byte-identical to len(pkts) single Forward calls.
//
// The amortization: within one call the RIB and the failure table cannot
// change (the simulation core is single-goroutine), so when no
// probabilistic rule is installed a walk is a pure function of the packet
// header. Repeated packets — all packets of one flow, and every flow
// sharing a (source, destination) pair — skip the LPM lookups, intra-AS
// BFS paths, and per-router rule matching entirely and reuse the first
// walk's Result. With a fractional-DropProb rule installed the memo stands
// down and every packet walks individually, preserving per-packet loss.
//
// Aliasing contract (mirrors intraPath): results of identical packets
// within one batch share one Hops backing array, and no result's Hops may
// be mutated by the caller. ForwardBatch itself only ever reads the memoed
// slices, so the contract holds under the race detector.
func (pl *Plane) ForwardBatch(from topo.RouterID, pkts []Packet, res []Result) []Result {
	if res == nil {
		res = make([]Result, 0, len(pkts))
	}

	if pl.hasProbRules() {
		// Per-packet fates: no memo, just the plain loop.
		for _, pkt := range pkts {
			res = append(res, pl.Forward(from, pkt))
		}
		return res
	}

	if pl.batch.memo == nil {
		pl.batch.memo = make(map[batchKey]int, 64)
	}
	memo := pl.batch.memo
	clear(memo)
	for _, pkt := range pkts {
		key := batchKey{dst: pkt.Dst, src: pkt.Src, ttl: pkt.TTL}
		if i, ok := memo[key]; ok {
			// The walk already ran this batch: advance the per-packet
			// sequence number exactly as forward would have (verdict
			// hashes must stay aligned with the single-packet execution)
			// and reuse the Result, Hops backing shared.
			pl.seq++
			r := res[i]
			res = append(res, r)
			pl.count(&r)
			continue
		}
		r := pl.forward(from, pkt)
		memo[key] = len(res)
		res = append(res, r)
		pl.count(&r)
	}
	return res
}
