package dataplane

import (
	"testing"

	"lifeguard/internal/topo"
)

// TestFailureIDsNeverReused pins the FailureID lifecycle contract documented
// on AddFailure: ids are allocated from a monotone counter and are never
// recycled, even after RemoveFailure or ClearFailures. Chaos heal/inject
// churn depends on a stale id never silently aliasing a newer rule.
func TestFailureIDsNeverReused(t *testing.T) {
	_, _, pl := lineNet(t)

	a := pl.AddFailure(BlackholeAS(2))
	b := pl.AddFailure(DropASLink(1, 2))
	if b <= a {
		t.Fatalf("ids not monotone: %d then %d", a, b)
	}
	if !pl.RemoveFailure(a) {
		t.Fatal("RemoveFailure(a) = false, want true")
	}
	//lint:ignore lglint/failureid deliberately probing that the first removal killed the ID
	if pl.RemoveFailure(a) {
		t.Fatal("double RemoveFailure(a) = true, want false")
	}
	c := pl.AddFailure(BlackholeAS(3))
	if c <= b {
		t.Fatalf("freed id recycled: got %d after %d", c, b)
	}
	if c == a {
		t.Fatalf("id %d reused for a different rule", a)
	}

	pl.ClearFailures()
	if pl.ActiveFailures() != 0 {
		t.Fatalf("ActiveFailures = %d after ClearFailures", pl.ActiveFailures())
	}
	d := pl.AddFailure(DropASLink(2, 3))
	if d <= c {
		t.Fatalf("ClearFailures reset the counter: got %d after %d", d, c)
	}
	// The stale ids must stay dead: removing them fails, looking them up
	// finds nothing, and the one live rule is still d.
	for _, stale := range []FailureID{a, b, c} {
		if pl.RemoveFailure(stale) {
			t.Fatalf("stale id %d removable after ClearFailures", stale)
		}
		//lint:ignore lglint/failureid deliberately probing that the stale ID no longer resolves
		if _, ok := pl.Failure(stale); ok {
			t.Fatalf("stale id %d still resolves to a rule", stale)
		}
	}
	if r, ok := pl.Failure(d); !ok || r.FromAS != 2 || r.ToAS != 3 {
		t.Fatalf("Failure(d) = %+v, %v", r, ok)
	}
}

// TestProbabilisticLossFraction checks that a DropProb rule drops roughly
// its configured fraction of a packet stream, and that DropProb = 0 keeps
// the pre-existing always-drop semantics of a plain matcher rule.
func TestProbabilisticLossFraction(t *testing.T) {
	top, _, pl := lineNet(t)
	src, dst := hub(top, 1), top.Router(hub(top, 3)).Addr
	pkt := Packet{Src: top.Router(hub(top, 1)).Addr, Dst: dst}

	const n = 2000
	for _, prob := range []float64{0.25, 0.5, 0.9} {
		pl.ClearFailures()
		pl.AddFailure(LossyAS(2, prob, 0xC0FFEE))
		dropped := 0
		for i := 0; i < n; i++ {
			if r := pl.Forward(src, pkt); !r.Delivered() {
				dropped++
			}
		}
		got := float64(dropped) / n
		if got < prob-0.05 || got > prob+0.05 {
			t.Errorf("prob %.2f: dropped %.3f of %d packets", prob, got, n)
		}
	}

	// DropProb zero value: the rule is a deterministic always-drop matcher.
	pl.ClearFailures()
	pl.AddFailure(BlackholeAS(2))
	for i := 0; i < 10; i++ {
		if r := pl.Forward(src, pkt); r.Delivered() {
			t.Fatal("DropProb=0 rule delivered a packet")
		}
	}
	// DropProb >= 1 also always drops.
	pl.ClearFailures()
	pl.AddFailure(LossyAS(2, 1.0, 7))
	for i := 0; i < 10; i++ {
		if r := pl.Forward(src, pkt); r.Delivered() {
			t.Fatal("DropProb=1 rule delivered a packet")
		}
	}
}

// TestProbabilisticLossDeterministic asserts the loss verdict is a pure
// function of (ProbSeed, packet sequence): two identically built planes see
// identical per-packet outcomes, and the outcome for a given packet does not
// depend on unrelated rules installed alongside (map-iteration independence).
func TestProbabilisticLossDeterministic(t *testing.T) {
	run := func(extra ...Rule) []bool {
		_, _, pl := lineNet(t)
		pl.AddFailure(LossyAS(2, 0.5, 42))
		for _, r := range extra {
			pl.AddFailure(r)
		}
		top := pl.top
		src := hub(top, 1)
		pkt := Packet{Src: top.Router(src).Addr, Dst: top.Router(hub(top, 3)).Addr}
		out := make([]bool, 200)
		for i := range out {
			r := pl.Forward(src, pkt)
			out[i] = r.Delivered()
		}
		return out
	}

	base := run()
	again := run()
	// A rule that never matches this flow must not perturb the verdicts.
	decoy := run(DropASLink(3, 2), BlackholeASTowards(1, topo.Block(2)))
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("packet %d: replay diverged", i)
		}
		if base[i] != decoy[i] {
			t.Fatalf("packet %d: verdict depends on unrelated rules", i)
		}
	}
	delivered := 0
	for _, ok := range base {
		if ok {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(base) {
		t.Fatalf("delivered %d/%d: not probabilistic", delivered, len(base))
	}
}
