package scalebench

import "testing"

// TestRunSmall exercises one small case end to end and pins the digest
// contract: identical configs (and different worker counts) produce
// identical routing state.
func TestRunSmall(t *testing.T) {
	r1, err := Run(Config{ASes: 200, Prefixes: 20, Seed: 1, ShardWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.LocRIBRoutes == 0 || r1.Updates == 0 || r1.Digest == "" {
		t.Fatalf("empty result: %+v", r1)
	}
	// Full propagation: every AS holds every prefix.
	if want := 200 * 20; r1.LocRIBRoutes != want {
		t.Fatalf("LocRIBRoutes = %d, want %d", r1.LocRIBRoutes, want)
	}
	if r1.ArenaPaths >= r1.AdjRIBEntries {
		t.Fatalf("interning ineffective: %d paths for %d entries", r1.ArenaPaths, r1.AdjRIBEntries)
	}
	r4, err := Run(Config{ASes: 200, Prefixes: 20, Seed: 1, ShardWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Digest != r1.Digest || r4.Updates != r1.Updates {
		t.Fatalf("worker counts diverged: %s/%d vs %s/%d",
			r1.Digest, r1.Updates, r4.Digest, r4.Updates)
	}
}

func TestShapeRejectsTiny(t *testing.T) {
	if _, err := Run(Config{ASes: 10, Seed: 1}); err == nil {
		t.Fatal("expected error below the AS floor")
	}
}
