// Package scalebench measures the engine's Internet-scale behaviour: it
// generates a 200-to-100k-AS topology, originates a fixed prefix table,
// converges the control plane, and reports wall-clock, memory, and routing
// state — plus an FNV-64 digest of every loc-RIB so two runs (or two worker
// counts) can be compared byte-for-byte.
//
// The prefix table is held fixed across AS counts so the scaling axis is
// topology size alone; a true full Internet table at 10k ASes would measure
// the host's swap, not the engine. Wall-clock readings here are the point
// of the package (it benchmarks the machine), unlike the simulation core,
// which must never consult real time.
package scalebench

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lifeguard/internal/bgp"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Config selects one scale-bench case.
type Config struct {
	// ASes is the topology size; the generator splits it into a tier-1
	// clique, a transit tier (~1/5), and stubs.
	ASes int `json:"ases"`
	// Prefixes is the number of origin prefixes announced (one per origin
	// stub, spread evenly across the stub tier). Default 200.
	Prefixes int   `json:"prefixes"`
	Seed     int64 `json:"seed"`
	// ShardWorkers is passed through to bgp.Config.
	ShardWorkers int `json:"shard_workers"`
	// MaxSteps bounds Engine.Converge. Default 2e9.
	MaxSteps int `json:"max_steps,omitempty"`
}

// Result is one case's measurements.
type Result struct {
	ASes         int   `json:"ases"`
	Prefixes     int   `json:"prefixes"`
	Seed         int64 `json:"seed"`
	ShardWorkers int   `json:"shard_workers"`

	// GenMS and ConvergeMS are wall-clock milliseconds for topology
	// generation and full-table convergence.
	GenMS      float64 `json:"gen_ms"`
	ConvergeMS float64 `json:"converge_ms"`
	// SimSeconds is how much virtual time convergence took.
	SimSeconds float64 `json:"sim_seconds"`

	Updates       int `json:"updates_sent"`
	LocRIBRoutes  int `json:"locrib_routes"`
	AdjRIBEntries int `json:"adjrib_entries"`
	// ArenaPaths counts distinct interned AS paths; AdjRIBEntries divided
	// by it is the sharing factor the intern arena buys.
	ArenaPaths int `json:"arena_paths"`

	// Digest fingerprints every speaker's loc-RIB (FNV-64 over sorted
	// (ASN, prefix, path) triples); equal digests mean identical routing.
	Digest string `json:"digest"`

	// HeapAllocMB is live heap after convergence (post-GC); VmHWMMB is the
	// process's peak resident set from /proc/self/status (0 where absent).
	// Peak RSS is only meaningful when the case ran in a fresh process.
	HeapAllocMB float64 `json:"heap_alloc_mb"`
	VmHWMMB     float64 `json:"vm_hwm_mb"`
}

// Run executes one case.
func Run(cfg Config) (*Result, error) {
	if cfg.Prefixes <= 0 {
		cfg.Prefixes = 200
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 2_000_000_000
	}
	tcfg, err := shape(cfg.ASes)
	if err != nil {
		return nil, err
	}
	tcfg.Seed = cfg.Seed

	genStart := time.Now()
	gen, err := topogen.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("scalebench: topogen: %w", err)
	}
	genMS := float64(time.Since(genStart)) / float64(time.Millisecond)

	// One production prefix exists per AS, so a small topology caps the
	// table at its stub count (the 200-AS baseline originates 155, not
	// 200 — which makes its scaling ratios conservative, not flattering).
	if cfg.Prefixes > len(gen.Stubs) {
		cfg.Prefixes = len(gen.Stubs)
	}
	clk := simclock.New()
	eng := bgp.New(gen.Top, clk, bgp.Config{Seed: cfg.Seed, ShardWorkers: cfg.ShardWorkers})

	// Origins: every (len(stubs)/Prefixes)-th stub announces its block.
	stride := len(gen.Stubs) / cfg.Prefixes
	convStart := time.Now()
	for i := 0; i < cfg.Prefixes; i++ {
		o := gen.Stubs[i*stride]
		eng.Originate(o, topo.ProductionPrefix(o))
	}
	if !eng.Converge(cfg.MaxSteps) {
		return nil, fmt.Errorf("scalebench: %d ASes did not converge within %d steps", cfg.ASes, cfg.MaxSteps)
	}
	convMS := float64(time.Since(convStart)) / float64(time.Millisecond)

	locRIB, adjEntries := eng.RIBSizes()
	res := &Result{
		ASes:          cfg.ASes,
		Prefixes:      cfg.Prefixes,
		Seed:          cfg.Seed,
		ShardWorkers:  cfg.ShardWorkers,
		GenMS:         genMS,
		ConvergeMS:    convMS,
		SimSeconds:    clk.Now().Seconds(),
		Updates:       eng.TotalUpdatesSent(),
		LocRIBRoutes:  locRIB,
		AdjRIBEntries: adjEntries,
		ArenaPaths:    eng.PathArenaSize(),
		Digest:        Digest(eng),
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)
	res.VmHWMMB = VmHWMMB()
	// The engine must stay reachable through the measurement or the GC
	// collects the very state being measured.
	runtime.KeepAlive(eng)
	return res, nil
}

// shape splits an AS budget into the generator's tiers: a small clique,
// ~20% transit, the rest stubs. Large topologies use the flat-array
// generator.
func shape(ases int) (topogen.Config, error) {
	if ases < 50 {
		return topogen.Config{}, fmt.Errorf("scalebench: %d ASes is below the 50-AS floor", ases)
	}
	t1 := 5
	if ases >= 5000 {
		t1 = 10
	}
	transit := ases / 5
	// Hold the mean transit-peer degree at ~2 regardless of tier size
	// (2/(40-1) ≈ the generator's 0.05 default at its default 40-transit
	// shape). A fixed pair probability would grow lateral edges — and
	// with them adj-RIB state and update traffic — quadratically in the
	// transit tier, which is a density change, not a scale change.
	return topogen.Config{
		NumTier1:        t1,
		NumTransit:      transit,
		NumStub:         ases - t1 - transit,
		TransitPeerProb: 2.0 / float64(transit-1),
		Large:           ases >= 1000,
	}, nil
}

// Digest fingerprints every speaker's routing state, in deterministic
// (ASN, prefix) order.
func Digest(eng *bgp.Engine) string {
	h := fnv.New64a()
	for _, asn := range eng.Topology().ASNs() {
		s := eng.Speaker(asn)
		for _, p := range s.KnownPrefixes() {
			r, _ := s.Best(p)
			fmt.Fprintf(h, "%d|%v|%v\n", asn, p, r.Path)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// VmHWMMB reads the process's peak resident set size from /proc/self/status
// in MiB; 0 on platforms without procfs. Peak RSS is monotone for the whole
// process lifetime, which is why the bench driver runs each case in a fresh
// subprocess.
func VmHWMMB() float64 {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
