//go:build simclockdebug

package simclock

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// ownerGuard pins a Scheduler to the first goroutine that touches it.
//
// The simulator's determinism rests on single-threaded event replay: a
// scheduler shared between two goroutines — say, two trial-runner workers
// accidentally handed the same net — interleaves event execution by host
// scheduling and silently destroys reproducibility. Under the
// simclockdebug build tag every mutating scheduler entry point asserts
// the calling goroutine is the owner, so that bug class dies with a stack
// trace at the first cross-goroutine call.
type ownerGuard struct {
	gid uint64 // claimed lazily by the first caller; 0 = unclaimed
}

func (g *ownerGuard) check() {
	id := curGoroutineID()
	if g.gid == 0 {
		g.gid = id
		return
	}
	if g.gid != id {
		panic(fmt.Sprintf(
			"simclock: scheduler owned by goroutine %d used from goroutine %d; "+
				"a scheduler must stay on the goroutine that first used it "+
				"(each runner trial builds its own net — see internal/runner)",
			g.gid, id))
	}
}

// curGoroutineID parses the running goroutine's id from its stack header
// ("goroutine N [running]:"). Debug-tag-only code: clarity over speed.
func curGoroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	panic("simclock: cannot parse goroutine id from stack header")
}
