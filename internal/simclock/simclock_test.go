package simclock

import (
	"testing"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var s Scheduler
	ran := false
	s.After(time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestOrderingByTime(t *testing.T) {
	s := New()
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	id := s.After(time.Second, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel reported not pending")
	}
	if s.Cancel(id) {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	s.At(1*time.Second, func() { got = append(got, 1) })
	id := s.At(2*time.Second, func() { got = append(got, 2) })
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.Cancel(id)
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	count := 0
	s.At(1*time.Second, func() { count++ })
	s.At(5*time.Second, func() { count++ })
	s.RunUntil(3 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
	s.Run()
	if count != 2 || s.Now() != 5*time.Second {
		t.Fatalf("after Run: count=%d Now=%v", count, s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.RunUntil(10 * time.Second)
	fired := false
	s.After(2*time.Second, func() { fired = true })
	s.RunFor(time.Second)
	if fired {
		t.Fatal("event fired early")
	}
	s.RunFor(time.Second)
	if !fired {
		t.Fatal("event did not fire")
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	s := New()
	var times []time.Duration
	var tick func()
	tick = func() {
		times = append(times, s.Now())
		if len(times) < 3 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run()
	if len(times) != 3 || times[2] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(0, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New()
	s.RunUntil(time.Second)
	ran := false
	s.After(-5*time.Second, func() { ran = true })
	s.Run()
	if !ran || s.Now() != time.Second {
		t.Fatalf("ran=%v now=%v", ran, s.Now())
	}
}

func TestLenAndStep(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Step() {
		t.Fatal("Step = false with pending events")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Run()
	if s.Step() {
		t.Fatal("Step = true with no events")
	}
}
