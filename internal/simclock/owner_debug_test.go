//go:build simclockdebug

package simclock

import (
	"strings"
	"testing"
	"time"
)

func TestOwnerGuardSameGoroutineOK(t *testing.T) {
	s := New()
	s.After(time.Second, func() {})
	s.Run()
	if s.Now() != time.Second {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestOwnerGuardCrossGoroutinePanics(t *testing.T) {
	s := New()
	s.After(time.Second, func() {}) // claims ownership on this goroutine

	got := make(chan any, 1)
	go func() {
		defer func() { got <- recover() }()
		s.Step()
	}()
	r := <-got
	if r == nil {
		t.Fatal("cross-goroutine Step did not panic under simclockdebug")
	}
	msg, ok := r.(string)
	if !ok || !strings.Contains(msg, "goroutine") {
		t.Fatalf("unexpected panic payload: %v", r)
	}
}

func TestOwnerGuardClaimedByFirstUser(t *testing.T) {
	// A scheduler built on one goroutine but used only on another is
	// fine: ownership belongs to the first *user*, matching the runner
	// pattern where a trial closure builds its net inside a worker.
	s := New()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		s.After(time.Minute, func() {})
		s.Run()
	}()
	if r := <-done; r != nil {
		t.Fatalf("first-user claim panicked: %v", r)
	}
}
