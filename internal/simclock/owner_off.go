//go:build !simclockdebug

package simclock

// ownerGuard is compiled away outside the simclockdebug build tag: the
// release scheduler carries no ownership state and check() inlines to
// nothing. Build with -tags simclockdebug (make debug-test, CI) to turn
// cross-goroutine scheduler use into an immediate panic instead of silent
// nondeterminism.
type ownerGuard struct{}

func (*ownerGuard) check() {}
