package simclock

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// Property: for any schedule of events, firing order is exactly
// (time ascending, insertion order among equal times), and the clock never
// moves backwards.
func TestFiringOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		type fired struct {
			at  time.Duration
			seq int
		}
		var got []fired
		for i, off := range offsets {
			at := time.Duration(off) * time.Millisecond
			i := i
			s.At(at, func() { got = append(got, fired{at: s.Now(), seq: i}) })
		}
		s.Run()
		if len(got) != len(offsets) {
			return false
		}
		// Expected order: stable sort by time.
		want := make([]fired, len(offsets))
		for i, off := range offsets {
			want[i] = fired{at: time.Duration(off) * time.Millisecond, seq: i}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		prev := time.Duration(-1)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			if got[i].at < prev {
				return false // clock went backwards
			}
			prev = got[i].at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling any subset of events fires exactly the complement,
// still in order.
func TestCancellationProperty(t *testing.T) {
	f := func(offsets []uint8, cancelMask uint64) bool {
		if len(offsets) > 60 {
			offsets = offsets[:60]
		}
		s := New()
		fired := make(map[int]bool)
		ids := make([]EventID, len(offsets))
		for i, off := range offsets {
			i := i
			ids[i] = s.At(time.Duration(off)*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range ids {
			if cancelMask&(1<<uint(i)) != 0 {
				if !s.Cancel(ids[i]) {
					return false
				}
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range offsets {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
