// Package simclock provides a deterministic discrete-event scheduler with a
// virtual clock. Every time-dependent component of the simulator (BGP MRAI
// timers, probe round trips, monitoring rounds) schedules callbacks here, so
// an entire experiment is a single-threaded, reproducible event replay.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// event is a single scheduled callback.
type event struct {
	at    time.Duration // virtual time
	seq   uint64        // tie-break: FIFO among events at the same instant
	id    EventID
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event scheduler. The zero value is ready to use.
// It is not safe for concurrent use; simulations are single-threaded by
// design so that runs are reproducible. Builds tagged simclockdebug
// additionally pin each scheduler to the first goroutine that uses it and
// panic on cross-goroutine use (see owner_debug.go) — accidental scheduler
// sharing between parallel trial workers fails immediately instead of
// corrupting results silently.
type Scheduler struct {
	now     time.Duration
	heap    eventHeap
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	owner   ownerGuard
}

// New returns a scheduler whose clock starts at zero virtual time.
func New() *Scheduler {
	return &Scheduler{live: make(map[EventID]*event)}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// NextAt reports the virtual time of the earliest pending event without
// running it; ok is false when nothing is scheduled. Components that batch
// work between scheduler events (the sharded BGP engine's barrier windows)
// use it to avoid running past the next externally-visible instant.
func (s *Scheduler) NextAt() (time.Duration, bool) {
	s.owner.check()
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulation bug, and silently reordering
// events would destroy reproducibility.
func (s *Scheduler) At(t time.Duration, fn func()) EventID {
	s.owner.check()
	if fn == nil {
		panic("simclock: nil event callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("simclock: scheduling at %v before now %v", t, s.now))
	}
	if s.live == nil {
		s.live = make(map[EventID]*event)
	}
	s.nextID++
	s.nextSeq++
	ev := &event{at: t, seq: s.nextSeq, id: s.nextID, fn: fn}
	heap.Push(&s.heap, ev)
	s.live[ev.id] = ev
	return ev.id
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if already fired or previously cancelled).
func (s *Scheduler) Cancel(id EventID) bool {
	s.owner.check()
	ev, ok := s.live[id]
	if !ok {
		return false
	}
	delete(s.live, id)
	heap.Remove(&s.heap, ev.index)
	return true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (s *Scheduler) Step() bool {
	s.owner.check()
	if len(s.heap) == 0 {
		return false
	}
	ev := heap.Pop(&s.heap).(*event)
	delete(s.live, ev.id)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t (even if no event was pending at t).
func (s *Scheduler) RunUntil(t time.Duration) {
	s.owner.check()
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for the next d of virtual time.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
