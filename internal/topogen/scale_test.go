package topogen

import (
	"reflect"
	"strings"
	"testing"

	"lifeguard/internal/topo"
)

// TestZeroProbabilityFlags is the regression test for the withDefaults
// zero-value trap: before the No* flags, requesting a probability of
// exactly 0 was impossible — the bare zero value was indistinguishable from
// "unset" and silently re-inflated to the default.
func TestZeroProbabilityFlags(t *testing.T) {
	res, err := Generate(Config{
		Seed:                   7,
		NoTransitPeering:       true,
		NoStubMultihome:        true,
		NoTransitExtraProvider: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Transit {
		for _, b := range res.Transit[i+1:] {
			if res.Top.Rel(a, b) == topo.RelPeer {
				t.Fatalf("NoTransitPeering: transits %d and %d peer", a, b)
			}
		}
	}
	for _, s := range res.Stubs {
		if got := len(res.Top.Providers(s)); got != 1 {
			t.Fatalf("NoStubMultihome: stub %d has %d providers, want 1", s, got)
		}
	}
	for _, tr := range res.Transit {
		if got := len(res.Top.Providers(tr)); got != 1 {
			t.Fatalf("NoTransitExtraProvider: transit %d has %d providers, want 1", tr, got)
		}
	}
}

// TestDefaultProbsSurviveZeroValues pins the other half of the contract:
// a zero-valued probability without its No* flag still means "default", so
// every pre-existing caller keeps its topology byte-for-byte.
func TestDefaultProbsSurviveZeroValues(t *testing.T) {
	zero, err := Generate(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Generate(Config{
		Seed:                     8,
		TransitExtraProviderProb: 0.5,
		StubMultihomeProb:        0.55,
		TransitPeerProb:          0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero.Top, explicit.Top) {
		t.Fatal("zero-valued probabilities no longer mean the defaults")
	}
	multi := 0
	for _, s := range zero.Stubs {
		if len(zero.Top.Providers(s)) == 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("default config produced no multihomed stubs")
	}
}

// TestDegenerateConfigSurfacesError: a config whose provider pools come up
// empty must produce a diagnosable error from Generate, not the old
// "topo: relate unknown AS 0" panic from pickWeighted's 0 sentinel flowing
// into the builder.
func TestDegenerateConfigSurfacesError(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 1, NumTier1: -1},                 // no clique: transits have no provider pool
		{Seed: 1, NumTier1: -1, NumTransit: -1}, // stubs have no provider pool either
		{Seed: 1, NumTier1: -1, Large: true},    // same failure through the large-mode generator
	} {
		_, err := Generate(cfg)
		if err == nil {
			t.Fatalf("Generate(%+v) succeeded, want error", cfg)
		}
		if !strings.Contains(err.Error(), "no provider candidate") {
			t.Fatalf("Generate(%+v) error = %q, want a 'no provider candidate' diagnosis", cfg, err)
		}
	}
}

// checkInternetInvariants asserts the structural properties every generated
// internetwork must satisfy, and that generation is deterministic.
func checkInternetInvariants(t *testing.T, cfg Config) *Result {
	t.Helper()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two Generate calls with one config are not identical")
	}
	// Every non-tier1 AS has at least one provider (the hierarchy tops out
	// at the clique, which is what makes universal valley-free reachability
	// possible).
	for _, asn := range a.Transit {
		if len(a.Top.Providers(asn)) < 1 {
			t.Fatalf("transit %d has no provider", asn)
		}
	}
	for _, asn := range a.Stubs {
		np := len(a.Top.Providers(asn))
		if np < 1 || np > 2 {
			t.Fatalf("stub %d has %d providers", asn, np)
		}
	}
	// The AS graph is connected: BFS from one tier-1 reaches everyone.
	seen := make(map[topo.ASN]bool, a.Top.NumASes())
	queue := []topo.ASN{a.Tier1s[0]}
	seen[a.Tier1s[0]] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range a.Top.Neighbors(cur) {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	if len(seen) != a.Top.NumASes() {
		t.Fatalf("AS graph disconnected: reached %d of %d", len(seen), a.Top.NumASes())
	}
	return a
}

func TestLargeMode2kProperties(t *testing.T) {
	res := checkInternetInvariants(t, Config{
		Seed:       21,
		Large:      true,
		NumTier1:   10,
		NumTransit: 400,
		NumStub:    1590,
	})
	if res.Top.NumASes() != 2000 {
		t.Fatalf("NumASes = %d, want 2000", res.Top.NumASes())
	}
}

func TestLargeMode10kProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-AS generation in -short mode")
	}
	res := checkInternetInvariants(t, Config{
		Seed:       22,
		Large:      true,
		NumTier1:   20,
		NumTransit: 2000,
		NumStub:    7980,
	})
	if res.Top.NumASes() != 10000 {
		t.Fatalf("NumASes = %d, want 10000", res.Top.NumASes())
	}
}

// TestLargeModeTransitPeering: the large generator draws a binomial
// *number* of transit peerings instead of flipping every pair; the realized
// count must still land near p·T·(T-1)/2.
func TestLargeModeTransitPeering(t *testing.T) {
	res, err := Generate(Config{
		Seed:       23,
		Large:      true,
		NumTier1:   5,
		NumTransit: 200,
		NumStub:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	peerings := 0
	for i, a := range res.Transit {
		for _, b := range res.Transit[i+1:] {
			if res.Top.Rel(a, b) == topo.RelPeer {
				peerings++
			}
		}
	}
	expected := 0.05 * 200 * 199 / 2 // ≈ 995
	if f := float64(peerings); f < expected*0.5 || f > expected*1.5 {
		t.Fatalf("transit peerings = %d, want ≈ %.0f", peerings, expected)
	}
}

// TestMaxASesValidation: every generated AS owns an address block, so the
// generator must reject configurations that overflow the address plan's
// contiguous ASN range with a clear error (the ASN type itself is 32-bit).
func TestMaxASesValidation(t *testing.T) {
	_, err := Generate(Config{Seed: 1, NumTier1: 10, NumTransit: 30000, NumStub: 40000})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized config error = %v", err)
	}
}
