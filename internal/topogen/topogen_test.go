package topogen

import (
	"testing"

	"lifeguard/internal/bgp"
	"lifeguard/internal/simclock"
	"lifeguard/internal/splice"
	"lifeguard/internal/topo"
)

func TestGenerateCountsAndTiers(t *testing.T) {
	res, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tier1s) != 5 || len(res.Transit) != 40 || len(res.Stubs) != 150 {
		t.Fatalf("sizes = %d/%d/%d", len(res.Tier1s), len(res.Transit), len(res.Stubs))
	}
	if res.Top.NumASes() != 195 {
		t.Fatalf("NumASes = %d", res.Top.NumASes())
	}
	for _, asn := range res.Tier1s {
		as := res.Top.AS(asn)
		if as.Tier != 1 || !as.StripCommunities {
			t.Fatalf("tier1 %d misconfigured: %+v", asn, as)
		}
		if len(res.Top.Providers(asn)) != 0 {
			t.Fatalf("tier1 %d has providers", asn)
		}
	}
	for _, asn := range res.Stubs {
		if got := len(res.Top.Customers(asn)); got != 0 {
			t.Fatalf("stub %d has %d customers", asn, got)
		}
		np := len(res.Top.Providers(asn))
		if np < 1 || np > 2 {
			t.Fatalf("stub %d has %d providers", asn, np)
		}
	}
}

func TestTier1Clique(t *testing.T) {
	res, err := Generate(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Tier1s {
		for j, b := range res.Tier1s {
			if i == j {
				continue
			}
			if res.Top.Rel(a, b) != topo.RelPeer {
				t.Fatalf("tier1 %d-%d not peering", a, b)
			}
		}
	}
}

func TestUniversalReachability(t *testing.T) {
	// Every AS must have a valley-free path to every stub: the provider
	// hierarchy tops out at the clique.
	res, err := Generate(Config{Seed: 3, NumTransit: 20, NumStub: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, origin := range []topo.ASN{res.Stubs[0], res.Stubs[len(res.Stubs)-1], res.Transit[0]} {
		r := splice.Reach(res.Top, origin, nil)
		if len(r) != res.Top.NumASes() {
			t.Fatalf("origin %d reaches only %d/%d ASes", origin, len(r), res.Top.NumASes())
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Top.NumRouters() != b.Top.NumRouters() {
		t.Fatalf("router counts differ: %d vs %d", a.Top.NumRouters(), b.Top.NumRouters())
	}
	for _, asn := range a.Top.ASNs() {
		na, nb := a.Top.Neighbors(asn), b.Top.Neighbors(asn)
		if len(na) != len(nb) {
			t.Fatalf("AS %d neighbors differ", asn)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("AS %d neighbor %d differs", asn, i)
			}
		}
	}
}

func TestEveryASHasRouters(t *testing.T) {
	res, err := Generate(Config{Seed: 4, NumTransit: 10, NumStub: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range res.Top.ASNs() {
		if len(res.Top.AS(asn).Routers) == 0 {
			t.Fatalf("AS %d has no routers", asn)
		}
	}
	if len(res.AllASNs()) != res.Top.NumASes() {
		t.Fatal("AllASNs incomplete")
	}
}

func TestGeneratedTopologyConvergesUnderBGP(t *testing.T) {
	res, err := Generate(Config{Seed: 5, NumTransit: 15, NumStub: 40})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New()
	e := bgp.New(res.Top, clk, bgp.Config{Seed: 5})
	origin := res.Stubs[0]
	e.Originate(origin, topo.ProductionPrefix(origin))
	if !e.Converge(20_000_000) {
		t.Fatal("generated topology did not converge")
	}
	// Every AS should have the route (universal reachability).
	for _, asn := range res.Top.ASNs() {
		if _, ok := e.BestRoute(asn, topo.ProductionPrefix(origin)); !ok {
			t.Fatalf("AS %d has no route to stub origin", asn)
		}
	}
}

func TestMultihomingFractionRoughlyMatches(t *testing.T) {
	res, err := Generate(Config{Seed: 6, NumStub: 400})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, s := range res.Stubs {
		if len(res.Top.Providers(s)) == 2 {
			multi++
		}
	}
	f := float64(multi) / float64(len(res.Stubs))
	if f < 0.40 || f > 0.70 {
		t.Fatalf("multihomed stub fraction = %.2f, want ~0.55", f)
	}
}
