package topogen

import (
	"testing"

	"lifeguard/internal/topo"
)

func TestGenerateWithOrigin(t *testing.T) {
	res, err := GenerateWithOrigin(Config{Seed: 3, NumTransit: 12, NumStub: 30}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Origin == 0 {
		t.Fatal("origin not reported")
	}
	provs := res.Top.Providers(res.Origin)
	if len(provs) != 5 {
		t.Fatalf("origin providers = %d, want 5", len(provs))
	}
	seen := map[topo.ASN]bool{}
	for _, p := range provs {
		if seen[p] {
			t.Fatalf("duplicate provider %d", p)
		}
		seen[p] = true
		if res.Top.AS(p).Tier != 2 {
			t.Fatalf("provider %d is tier %d, want transit", p, res.Top.AS(p).Tier)
		}
	}
	if len(res.Top.AS(res.Origin).Routers) == 0 {
		t.Fatal("origin has no routers")
	}
	if len(res.Top.Customers(res.Origin)) != 0 {
		t.Fatal("origin must be a stub")
	}
}

func TestGenerateWithOriginClampsProviders(t *testing.T) {
	res, err := GenerateWithOrigin(Config{Seed: 4, NumTransit: 3, NumStub: 5}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Top.Providers(res.Origin)); got != 3 {
		t.Fatalf("providers = %d, want clamped to 3", got)
	}
	res, err = GenerateWithOrigin(Config{Seed: 4, NumTransit: 3, NumStub: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Top.Providers(res.Origin)); got != 1 {
		t.Fatalf("providers = %d, want floored to 1", got)
	}
}

func TestGenerateWithOriginDeterministic(t *testing.T) {
	a, _ := GenerateWithOrigin(Config{Seed: 9, NumTransit: 10, NumStub: 20}, 2)
	b, _ := GenerateWithOrigin(Config{Seed: 9, NumTransit: 10, NumStub: 20}, 2)
	if a.Origin != b.Origin {
		t.Fatal("origin differs across identical runs")
	}
	pa, pb := a.Top.Providers(a.Origin), b.Top.Providers(b.Origin)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("providers differ across identical runs")
		}
	}
}
