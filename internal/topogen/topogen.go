// Package topogen synthesizes Internet-like topologies: a clique of Tier-1
// ASes, a transit hierarchy attached by preferential attachment, and a
// power-law-ish fringe of stub ASes — each AS realized with a hub router
// and per-adjacency border routers so the data plane produces realistic
// traceroutes. It stands in for the real AS topology (BGP feeds + the
// BitTorrent-extended graph of §5.1), which an offline reproduction cannot
// download.
package topogen

import (
	"fmt"
	"math/rand"

	"lifeguard/internal/topo"
)

// Config controls generation. Zero values select defaults.
type Config struct {
	Seed int64
	// NumTier1 is the size of the transit-free clique. Default 5.
	NumTier1 int
	// NumTransit is the number of mid-tier transit ASes. Default 40.
	NumTransit int
	// NumStub is the number of edge ASes. Default 150.
	NumStub int
	// TransitExtraProviderProb is the chance a transit AS gets a second
	// provider. Default 0.5.
	TransitExtraProviderProb float64
	// StubMultihomeProb is the chance a stub gets a second provider
	// (multihoming is what lets poisoning find alternates). Default 0.55.
	StubMultihomeProb float64
	// TransitPeerProb is the probability that any given pair of transit
	// ASes peers. Default 0.05.
	TransitPeerProb float64
	// Tier1StripCommunities marks Tier-1s as community-stripping (the
	// paper's §2.3 observation). Default true (set by NoTier1Strip).
	NoTier1Strip bool
}

func (c Config) withDefaults() Config {
	if c.NumTier1 == 0 {
		c.NumTier1 = 5
	}
	if c.NumTransit == 0 {
		c.NumTransit = 40
	}
	if c.NumStub == 0 {
		c.NumStub = 150
	}
	if c.TransitExtraProviderProb == 0 {
		c.TransitExtraProviderProb = 0.5
	}
	if c.StubMultihomeProb == 0 {
		c.StubMultihomeProb = 0.55
	}
	if c.TransitPeerProb == 0 {
		c.TransitPeerProb = 0.05
	}
	return c
}

// Result carries the generated topology and the role of each AS.
type Result struct {
	Top     *topo.Topology
	Tier1s  []topo.ASN
	Transit []topo.ASN
	Stubs   []topo.ASN
	// Origin is the multihomed measurement stub added by
	// GenerateWithOrigin (zero otherwise).
	Origin topo.ASN
}

// AllASNs returns every generated ASN (tier1, transit, stub order).
func (r *Result) AllASNs() []topo.ASN {
	out := make([]topo.ASN, 0, len(r.Tier1s)+len(r.Transit)+len(r.Stubs))
	out = append(out, r.Tier1s...)
	out = append(out, r.Transit...)
	out = append(out, r.Stubs...)
	return out
}

// Generate builds a topology for the config. Identical configs produce
// identical topologies.
func Generate(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	b, res, _, _ := synth(cfg)
	return finish(b, res, cfg)
}

// GenerateWithOrigin builds the same internetwork as Generate plus one
// extra multihomed stub — the LIFEGUARD origin — attached to `providers`
// distinct transit ASes, mirroring the paper's BGP-Mux deployment (one AS
// announcing via several university muxes). The origin is reported in
// Result.Origin.
func GenerateWithOrigin(cfg Config, providers int) (*Result, error) {
	cfg = cfg.withDefaults()
	if providers < 1 {
		providers = 1
	}
	b, res, rng, next := synth(cfg)
	origin := next
	as := b.AddAS(origin, fmt.Sprintf("ORIGIN%d", origin))
	as.Tier = 3
	b.AddRouter(origin, "")
	if providers > len(res.Transit) {
		providers = len(res.Transit)
	}
	perm := rng.Perm(len(res.Transit))
	for _, i := range perm[:providers] {
		p := res.Transit[i]
		b.Provider(origin, p)
		b.ConnectAS(origin, p)
	}
	res.Origin = origin
	return finish(b, res, cfg)
}

// synth lays out the AS graph without building it, so callers can append
// experiment-specific ASes. It returns the builder, the roles, the RNG, and
// the next unused ASN.
func synth(cfg Config) (*topo.Builder, *Result, *rand.Rand, topo.ASN) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := topo.NewBuilder()
	res := &Result{}

	next := topo.ASN(1)
	newAS := func(name string, tier int) topo.ASN {
		asn := next
		next++
		as := b.AddAS(asn, fmt.Sprintf("%s%d", name, asn))
		as.Tier = tier
		b.AddRouter(asn, "") // hub
		return asn
	}

	// Tier-1 clique.
	for i := 0; i < cfg.NumTier1; i++ {
		asn := newAS("T1-", 1)
		res.Tier1s = append(res.Tier1s, asn)
	}
	for i := 0; i < len(res.Tier1s); i++ {
		for j := i + 1; j < len(res.Tier1s); j++ {
			b.Peer(res.Tier1s[i], res.Tier1s[j])
			b.ConnectAS(res.Tier1s[i], res.Tier1s[j])
		}
	}
	// degree tracks attachment weight for preferential attachment.
	degree := make(map[topo.ASN]int)
	for _, t := range res.Tier1s {
		degree[t] = cfg.NumTier1 - 1
	}
	pickWeighted := func(cands []topo.ASN, exclude map[topo.ASN]bool) topo.ASN {
		total := 0
		for _, c := range cands {
			if !exclude[c] {
				total += degree[c] + 1
			}
		}
		if total == 0 {
			return 0
		}
		x := rng.Intn(total)
		for _, c := range cands {
			if exclude[c] {
				continue
			}
			x -= degree[c] + 1
			if x < 0 {
				return c
			}
		}
		return 0
	}

	attach := func(child topo.ASN, pool []topo.ASN, extraProb float64) {
		exclude := map[topo.ASN]bool{child: true}
		p1 := pickWeighted(pool, exclude)
		b.Provider(child, p1)
		b.ConnectAS(child, p1)
		degree[p1]++
		degree[child]++
		if rng.Float64() < extraProb {
			exclude[p1] = true
			if p2 := pickWeighted(pool, exclude); p2 != 0 {
				b.Provider(child, p2)
				b.ConnectAS(child, p2)
				degree[p2]++
				degree[child]++
			}
		}
	}

	// Transit tier: providers drawn from Tier-1s and earlier transits.
	pool := append([]topo.ASN(nil), res.Tier1s...)
	for i := 0; i < cfg.NumTransit; i++ {
		asn := newAS("TR-", 2)
		attach(asn, pool, cfg.TransitExtraProviderProb)
		res.Transit = append(res.Transit, asn)
		pool = append(pool, asn)
	}

	// Peering among transits.
	for i := 0; i < len(res.Transit); i++ {
		for j := i + 1; j < len(res.Transit); j++ {
			a, c := res.Transit[i], res.Transit[j]
			if rng.Float64() < cfg.TransitPeerProb && !b.Related(a, c) {
				b.Peer(a, c)
				b.ConnectAS(a, c)
				degree[a]++
				degree[c]++
			}
		}
	}

	// Stubs attach to transits (and occasionally Tier-1s).
	stubPool := append(append([]topo.ASN(nil), res.Transit...), res.Tier1s...)
	for i := 0; i < cfg.NumStub; i++ {
		asn := newAS("ST-", 3)
		attach(asn, stubPool, cfg.StubMultihomeProb)
		res.Stubs = append(res.Stubs, asn)
	}

	return b, res, rng, next
}

// finish validates the builder and applies post-build policy flags.
func finish(b *topo.Builder, res *Result, cfg Config) (*Result, error) {
	top, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !cfg.NoTier1Strip {
		for _, t1 := range res.Tier1s {
			top.AS(t1).StripCommunities = true
		}
	}
	res.Top = top
	return res, nil
}
