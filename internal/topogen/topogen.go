// Package topogen synthesizes Internet-like topologies: a clique of Tier-1
// ASes, a transit hierarchy attached by preferential attachment, and a
// power-law-ish fringe of stub ASes — each AS realized with a hub router
// and per-adjacency border routers so the data plane produces realistic
// traceroutes. It stands in for the real AS topology (BGP feeds + the
// BitTorrent-extended graph of §5.1), which an offline reproduction cannot
// download.
//
// Two generators share the same shape model: the default one, tuned for the
// few-hundred-AS experiment rigs, and a large mode (Config.Large) that lays
// out 10k+-AS graphs with flat arrays and a Fenwick tree instead of per-AS
// maps — see largemode.go.
package topogen

import (
	"fmt"
	"math/rand"

	"lifeguard/internal/topo"
)

// maxASes bounds generated topologies: the generator allocates ASNs
// contiguously from 1 and every AS owns an address block, so the address
// plan's topo.MaxASN (not the 32-bit ASN type) is the binding constraint —
// with headroom kept for callers that append experiment-specific ASes
// (GenerateWithOrigin).
const maxASes = 65000

// Config controls generation. Zero values select defaults; the No* flags
// request an explicit zero where 0 would otherwise mean "default" (a
// probability of exactly 0 is a meaningful request for no-peering or
// strictly single-homed rigs).
type Config struct {
	Seed int64
	// NumTier1 is the size of the transit-free clique. Default 5.
	NumTier1 int
	// NumTransit is the number of mid-tier transit ASes. Default 40.
	NumTransit int
	// NumStub is the number of edge ASes. Default 150.
	NumStub int
	// TransitExtraProviderProb is the chance a transit AS gets a second
	// provider. Default 0.5; set NoTransitExtraProvider for exactly 0.
	TransitExtraProviderProb float64
	// StubMultihomeProb is the chance a stub gets a second provider
	// (multihoming is what lets poisoning find alternates). Default 0.55;
	// set NoStubMultihome for exactly 0.
	StubMultihomeProb float64
	// TransitPeerProb is the probability that any given pair of transit
	// ASes peers. Default 0.05; set NoTransitPeering for exactly 0.
	TransitPeerProb float64
	// Tier1StripCommunities marks Tier-1s as community-stripping (the
	// paper's §2.3 observation). Default true (set by NoTier1Strip).
	NoTier1Strip bool

	// NoTransitExtraProvider forces TransitExtraProviderProb to 0. A bare
	// zero in the probability field still means "use the default", so
	// existing callers are unaffected.
	NoTransitExtraProvider bool
	// NoStubMultihome forces StubMultihomeProb to 0 (every stub
	// single-homed).
	NoStubMultihome bool
	// NoTransitPeering forces TransitPeerProb to 0 (a pure provider
	// hierarchy with no lateral transit edges).
	NoTransitPeering bool

	// Large selects the flat-array generator for 10k+-AS topologies. It is
	// a distinct shape model (same construction rules, different sampling
	// order), so Large and non-Large runs of the same seed produce
	// different — but individually deterministic — graphs.
	Large bool
}

func (c Config) withDefaults() Config {
	if c.NumTier1 == 0 {
		c.NumTier1 = 5
	}
	if c.NumTransit == 0 {
		c.NumTransit = 40
	}
	if c.NumStub == 0 {
		c.NumStub = 150
	}
	// The No* flags exist because 0 in the probability fields means "use
	// the default": they are the only way to request an explicit zero.
	switch {
	case c.NoTransitExtraProvider:
		c.TransitExtraProviderProb = 0
	case c.TransitExtraProviderProb == 0:
		c.TransitExtraProviderProb = 0.5
	}
	switch {
	case c.NoStubMultihome:
		c.StubMultihomeProb = 0
	case c.StubMultihomeProb == 0:
		c.StubMultihomeProb = 0.55
	}
	switch {
	case c.NoTransitPeering:
		c.TransitPeerProb = 0
	case c.TransitPeerProb == 0:
		c.TransitPeerProb = 0.05
	}
	return c
}

// validate rejects configurations the generators cannot realize. Degenerate
// pool shapes (e.g. a negative NumTier1 leaving transits with no providers)
// are not pre-screened here; they surface as attachment errors so the
// failing AS is named in the diagnostic.
func (c Config) validate() error {
	if total := c.NumTier1 + c.NumTransit + c.NumStub; total > maxASes {
		return fmt.Errorf("topogen: %d ASes exceeds the %d limit of the address plan", total, maxASes)
	}
	return nil
}

// Result carries the generated topology and the role of each AS.
type Result struct {
	Top     *topo.Topology
	Tier1s  []topo.ASN
	Transit []topo.ASN
	Stubs   []topo.ASN
	// Origin is the multihomed measurement stub added by
	// GenerateWithOrigin (zero otherwise).
	Origin topo.ASN
}

// AllASNs returns every generated ASN (tier1, transit, stub order).
func (r *Result) AllASNs() []topo.ASN {
	out := make([]topo.ASN, 0, len(r.Tier1s)+len(r.Transit)+len(r.Stubs))
	out = append(out, r.Tier1s...)
	out = append(out, r.Transit...)
	out = append(out, r.Stubs...)
	return out
}

// Generate builds a topology for the config. Identical configs produce
// identical topologies.
func Generate(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	b, res, _, _, err := synth(cfg)
	if err != nil {
		return nil, err
	}
	return finish(b, res, cfg)
}

// GenerateWithOrigin builds the same internetwork as Generate plus one
// extra multihomed stub — the LIFEGUARD origin — attached to `providers`
// distinct transit ASes, mirroring the paper's BGP-Mux deployment (one AS
// announcing via several university muxes). The origin is reported in
// Result.Origin.
func GenerateWithOrigin(cfg Config, providers int) (*Result, error) {
	cfg = cfg.withDefaults()
	if providers < 1 {
		providers = 1
	}
	b, res, rng, next, err := synth(cfg)
	if err != nil {
		return nil, err
	}
	if len(res.Transit) == 0 {
		return nil, fmt.Errorf("topogen: origin needs transit providers, config has none")
	}
	origin := next
	as := b.AddAS(origin, fmt.Sprintf("ORIGIN%d", origin))
	as.Tier = 3
	b.AddRouter(origin, "")
	if providers > len(res.Transit) {
		providers = len(res.Transit)
	}
	perm := rng.Perm(len(res.Transit))
	for _, i := range perm[:providers] {
		p := res.Transit[i]
		b.Provider(origin, p)
		b.ConnectAS(origin, p)
	}
	res.Origin = origin
	return finish(b, res, cfg)
}

// synth lays out the AS graph without building it, so callers can append
// experiment-specific ASes. It returns the builder, the roles, the RNG, and
// the next unused ASN. cfg must already have defaults applied.
func synth(cfg Config) (*topo.Builder, *Result, *rand.Rand, topo.ASN, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, nil, 0, err
	}
	if cfg.Large {
		return largeSynth(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := topo.NewBuilder()
	res := &Result{}

	next := topo.ASN(1)
	newAS := func(name string, tier int) topo.ASN {
		asn := next
		next++
		as := b.AddAS(asn, fmt.Sprintf("%s%d", name, asn))
		as.Tier = tier
		b.AddRouter(asn, "") // hub
		return asn
	}

	// Tier-1 clique.
	for i := 0; i < cfg.NumTier1; i++ {
		asn := newAS("T1-", 1)
		res.Tier1s = append(res.Tier1s, asn)
	}
	for i := 0; i < len(res.Tier1s); i++ {
		for j := i + 1; j < len(res.Tier1s); j++ {
			b.Peer(res.Tier1s[i], res.Tier1s[j])
			b.ConnectAS(res.Tier1s[i], res.Tier1s[j])
		}
	}
	// degree tracks attachment weight for preferential attachment.
	degree := make(map[topo.ASN]int)
	for _, t := range res.Tier1s {
		degree[t] = cfg.NumTier1 - 1
	}
	pickWeighted := func(cands []topo.ASN, exclude map[topo.ASN]bool) topo.ASN {
		total := 0
		for _, c := range cands {
			if !exclude[c] {
				total += degree[c] + 1
			}
		}
		if total == 0 {
			return 0 // no candidate: every pool member is excluded (or the pool is empty)
		}
		x := rng.Intn(total)
		for _, c := range cands {
			if exclude[c] {
				continue
			}
			x -= degree[c] + 1
			if x < 0 {
				return c
			}
		}
		return 0
	}

	attach := func(child topo.ASN, pool []topo.ASN, extraProb float64) error {
		exclude := map[topo.ASN]bool{child: true}
		p1 := pickWeighted(pool, exclude)
		if p1 == 0 {
			// pickWeighted's failure sentinel: without this guard the 0
			// would flow into Provider/ConnectAS as a bogus ASN.
			return fmt.Errorf("topogen: no provider candidate for AS %d (pool of %d all excluded)", child, len(pool))
		}
		b.Provider(child, p1)
		b.ConnectAS(child, p1)
		degree[p1]++
		degree[child]++
		if rng.Float64() < extraProb {
			exclude[p1] = true
			if p2 := pickWeighted(pool, exclude); p2 != 0 {
				b.Provider(child, p2)
				b.ConnectAS(child, p2)
				degree[p2]++
				degree[child]++
			}
		}
		return nil
	}

	// Transit tier: providers drawn from Tier-1s and earlier transits.
	pool := append([]topo.ASN(nil), res.Tier1s...)
	for i := 0; i < cfg.NumTransit; i++ {
		asn := newAS("TR-", 2)
		if err := attach(asn, pool, cfg.TransitExtraProviderProb); err != nil {
			return nil, nil, nil, 0, err
		}
		res.Transit = append(res.Transit, asn)
		pool = append(pool, asn)
	}

	// Peering among transits.
	for i := 0; i < len(res.Transit); i++ {
		for j := i + 1; j < len(res.Transit); j++ {
			a, c := res.Transit[i], res.Transit[j]
			if rng.Float64() < cfg.TransitPeerProb && !b.Related(a, c) {
				b.Peer(a, c)
				b.ConnectAS(a, c)
				degree[a]++
				degree[c]++
			}
		}
	}

	// Stubs attach to transits (and occasionally Tier-1s).
	stubPool := append(append([]topo.ASN(nil), res.Transit...), res.Tier1s...)
	for i := 0; i < cfg.NumStub; i++ {
		asn := newAS("ST-", 3)
		if err := attach(asn, stubPool, cfg.StubMultihomeProb); err != nil {
			return nil, nil, nil, 0, err
		}
		res.Stubs = append(res.Stubs, asn)
	}

	return b, res, rng, next, nil
}

// finish validates the builder and applies post-build policy flags.
func finish(b *topo.Builder, res *Result, cfg Config) (*Result, error) {
	top, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !cfg.NoTier1Strip {
		for _, t1 := range res.Tier1s {
			top.AS(t1).StripCommunities = true
		}
	}
	res.Top = top
	return res, nil
}
