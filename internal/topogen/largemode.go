package topogen

import (
	"fmt"
	"math/rand"

	"lifeguard/internal/topo"
)

// Large-mode generation. The default generator is fine at a few hundred
// ASes but its hot loop is O(pool) per attachment (pickWeighted walks the
// candidate slice) and O(T²) rng draws for transit peering — at 10k+ ASes
// that is minutes of generation before the first BGP update flows. Large
// mode keeps the same shape model (Tier-1 clique, preferential-attachment
// transit hierarchy, multihomed stub fringe) but lays the graph out over
// flat arrays indexed by the contiguous ASN space:
//
//   - attachment weights (degree+1) live in a Fenwick tree, so a weighted
//     pick with exclusions is O(log n) instead of O(n), with no per-AS maps
//     touched in the loop;
//   - transit peering draws the *number* of peer edges from the binomial's
//     expectation and then samples pairs uniformly, replacing the O(T²)
//     per-pair coin flips with O(E) draws.
//
// The sampling order differs from the default generator, so Large and
// non-Large runs of one seed give different graphs; each mode is
// individually byte-deterministic (Large is an explicit Config field, so
// the same config always reproduces the same topology).

// fenwick is a Fenwick (binary indexed) tree over non-negative integer
// weights, supporting point updates, total-sum queries, and weighted
// selection in O(log n).
type fenwick struct {
	n    int
	tree []int // 1-based partial sums
	w    []int // current per-slot weights, for O(1) reads
}

func newFenwick(n int) *fenwick {
	return &fenwick{n: n, tree: make([]int, n+1), w: make([]int, n)}
}

// add applies a (possibly negative) delta to slot i's weight.
func (f *fenwick) add(i, delta int) {
	f.w[i] += delta
	for j := i + 1; j <= f.n; j += j & (-j) {
		f.tree[j] += delta
	}
}

// weight reads slot i's current weight.
func (f *fenwick) weight(i int) int { return f.w[i] }

// total returns the sum of all weights.
func (f *fenwick) total() int {
	s := 0
	for j := f.n; j > 0; j -= j & (-j) {
		s += f.tree[j]
	}
	return s
}

// find returns the slot holding the x-th unit of weight (0 <= x < total):
// the smallest i with prefix_sum(0..i) > x.
func (f *fenwick) find(x int) int {
	idx := 0
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		if next := idx + bit; next <= f.n && f.tree[next] <= x {
			idx = next
			x -= f.tree[next]
		}
	}
	return idx // 0-based slot
}

// largeGen carries the flat-array state of one large-mode run. Slot i of
// the Fenwick tree is AS i+1 (the generator allocates ASNs contiguously),
// covering the Tier-1 + transit provider pool; stubs never join a pool.
type largeGen struct {
	b   *topo.Builder
	rng *rand.Rand
	fw  *fenwick
}

// pick draws a provider slot proportionally to weight, with up to two slots
// excluded (slot < 0 means no exclusion). Exclusions are realized by
// temporarily zeroing the slot's weight; -1 is returned when no weight
// remains — the caller must treat that as "no candidate", never as a slot.
func (g *largeGen) pick(ex1, ex2 int) int {
	var w1, w2 int
	if ex1 >= 0 {
		if w1 = g.fw.weight(ex1); w1 > 0 {
			g.fw.add(ex1, -w1)
		}
	}
	if ex2 >= 0 {
		if w2 = g.fw.weight(ex2); w2 > 0 {
			g.fw.add(ex2, -w2)
		}
	}
	slot := -1
	if total := g.fw.total(); total > 0 {
		slot = g.fw.find(g.rng.Intn(total))
	}
	if w2 > 0 {
		g.fw.add(ex2, w2)
	}
	if w1 > 0 {
		g.fw.add(ex1, w1)
	}
	return slot
}

// attach gives child one provider (and with probability extraProb a second
// distinct one) from the current pool, mirroring the default generator's
// attach but in O(log n).
func (g *largeGen) attach(child topo.ASN, extraProb float64) (deg int, err error) {
	s1 := g.pick(-1, -1)
	if s1 < 0 {
		return 0, fmt.Errorf("topogen: no provider candidate for AS %d (empty provider pool)", child)
	}
	p1 := topo.ASN(s1 + 1)
	g.b.Provider(child, p1)
	g.b.ConnectAS(child, p1)
	g.fw.add(s1, 1)
	deg = 1
	if g.rng.Float64() < extraProb {
		if s2 := g.pick(s1, -1); s2 >= 0 {
			p2 := topo.ASN(s2 + 1)
			g.b.Provider(child, p2)
			g.b.ConnectAS(child, p2)
			g.fw.add(s2, 1)
			deg = 2
		}
	}
	return deg, nil
}

// largeSynth is synth's flat-array twin for Config.Large. cfg must already
// have defaults applied and been validated by synth.
func largeSynth(cfg Config) (*topo.Builder, *Result, *rand.Rand, topo.ASN, error) {
	g := &largeGen{
		b:   topo.NewBuilder(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		fw:  newFenwick(maxInt(cfg.NumTier1, 0) + maxInt(cfg.NumTransit, 0)),
	}
	res := &Result{}

	next := topo.ASN(1)
	newAS := func(name string, tier int) topo.ASN {
		asn := next
		next++
		as := g.b.AddAS(asn, fmt.Sprintf("%s%d", name, asn))
		as.Tier = tier
		g.b.AddRouter(asn, "") // hub
		return asn
	}

	// Tier-1 clique: every member starts at degree NumTier1-1, weight
	// degree+1.
	for i := 0; i < cfg.NumTier1; i++ {
		res.Tier1s = append(res.Tier1s, newAS("T1-", 1))
	}
	for i := 0; i < len(res.Tier1s); i++ {
		for j := i + 1; j < len(res.Tier1s); j++ {
			g.b.Peer(res.Tier1s[i], res.Tier1s[j])
			g.b.ConnectAS(res.Tier1s[i], res.Tier1s[j])
		}
	}
	for _, t := range res.Tier1s {
		g.fw.add(int(t)-1, cfg.NumTier1)
	}

	// Transit tier: each new transit attaches to the pool of Tier-1s and
	// earlier transits (their slots carry weight; its own slot is still 0),
	// then joins the pool at weight degree+1.
	for i := 0; i < cfg.NumTransit; i++ {
		asn := newAS("TR-", 2)
		deg, err := g.attach(asn, cfg.TransitExtraProviderProb)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		g.fw.add(int(asn)-1, deg+1)
		res.Transit = append(res.Transit, asn)
	}

	// Peering among transits: draw the edge count from the binomial's
	// expectation (floor + fractional coin), then sample pairs uniformly.
	// A draw that lands on an already-related pair is skipped but still
	// consumes its attempt, bounding the loop at exactly `count` draws.
	if t := len(res.Transit); t >= 2 && cfg.TransitPeerProb > 0 {
		expected := cfg.TransitPeerProb * float64(t) * float64(t-1) / 2
		count := int(expected)
		if g.rng.Float64() < expected-float64(count) {
			count++
		}
		for k := 0; k < count; k++ {
			i := g.rng.Intn(t)
			j := g.rng.Intn(t - 1)
			if j >= i {
				j++
			}
			a, c := res.Transit[i], res.Transit[j]
			if g.b.Related(a, c) {
				continue
			}
			g.b.Peer(a, c)
			g.b.ConnectAS(a, c)
			g.fw.add(int(a)-1, 1)
			g.fw.add(int(c)-1, 1)
		}
	}

	// Stub fringe: the pool is every Tier-1 and transit (the whole tree).
	// Stub degrees never weight anything, so they are not tracked.
	for i := 0; i < cfg.NumStub; i++ {
		asn := newAS("ST-", 3)
		if _, err := g.attach(asn, cfg.StubMultihomeProb); err != nil {
			return nil, nil, nil, 0, err
		}
		res.Stubs = append(res.Stubs, asn)
	}

	return g.b, res, g.rng, next, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
