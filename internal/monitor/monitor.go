// Package monitor implements LIFEGUARD's reachability monitoring (§2.1):
// vantage points send a pair of pings to each watched target every round,
// and a target is declared down for a vantage point after a run of
// consecutive all-failed rounds — the same rule the paper's EC2 study used
// (pairs every 30s, four consecutive dropped pairs ⇒ outage, so the minimum
// detectable outage is 90 seconds). Outage begin/end events drive failure
// isolation and the availability accounting.
package monitor

import (
	"net/netip"
	"time"

	"lifeguard/internal/atlas"
	"lifeguard/internal/obs"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
)

// Config tunes detection.
type Config struct {
	// Interval between rounds. Default 30s.
	Interval time.Duration
	// FailThreshold is the number of consecutive failed rounds that
	// declares an outage. Default 4.
	FailThreshold int
	// PingsPerRound is how many pings form one round; the round fails
	// only if all of them fail. Default 2 (a "pair of pings").
	PingsPerRound int
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 30 * time.Second
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 4
	}
	if c.PingsPerRound == 0 {
		c.PingsPerRound = 2
	}
	return c
}

// Outage describes one detected outage between a vantage point and target.
type Outage struct {
	VP     topo.RouterID
	Target netip.Addr
	// Start is when the first failed round was sent; End is when a round
	// succeeded again (zero while ongoing).
	Start, End time.Duration
}

// Duration returns the outage length (ongoing outages measure to now).
func (o *Outage) Duration(now time.Duration) time.Duration {
	if o.End > 0 {
		return o.End - o.Start
	}
	return now - o.Start
}

type pairKey struct {
	vp     topo.RouterID
	src    netip.Addr // zero: use the vp router's own address
	target netip.Addr
}

type pairState struct {
	consecFails int
	firstFail   time.Duration
	current     *Outage
}

// Monitor drives periodic reachability rounds.
type Monitor struct {
	pr  *probe.Prober
	clk *simclock.Scheduler
	cfg Config

	// Atlas, when set, receives responsiveness observations.
	Atlas *atlas.Atlas

	// OnOutage fires when an outage is declared (after FailThreshold
	// rounds); OnRecovery fires when a declared outage heals.
	OnOutage   func(o *Outage)
	OnRecovery func(o *Outage)
	// OnRound fires after every completed monitoring round — the
	// heartbeat a failsafe watchdog uses to detect monitor loss.
	OnRound func()

	pairs []pairKey
	state map[pairKey]*pairState

	// History accumulates all declared outages, resolved or not.
	History []*Outage

	ticker  simclock.EventID
	started bool

	obs monitorObs
}

// monitorObs holds the monitor's metric handles; the zero value (all-nil
// handles) is the uninstrumented state.
type monitorObs struct {
	rounds     *obs.Counter
	outages    *obs.Counter
	recoveries *obs.Counter
}

// Instrument registers the monitor's metrics with reg. A nil registry
// leaves the monitor uninstrumented.
func (m *Monitor) Instrument(reg *obs.Registry) {
	reg.Describe("lifeguard_monitor_ping_rounds_total",
		"monitoring rounds executed per watched (vantage point, target) pair")
	reg.Describe("lifeguard_monitor_outages_detected_total",
		"outages declared after FailThreshold consecutive failed rounds")
	reg.Describe("lifeguard_monitor_recoveries_total",
		"declared outages that subsequently healed")
	m.obs.rounds = reg.Counter("lifeguard_monitor_ping_rounds_total")
	m.obs.outages = reg.Counter("lifeguard_monitor_outages_detected_total")
	m.obs.recoveries = reg.Counter("lifeguard_monitor_recoveries_total")
}

// New returns a monitor with no watched pairs.
func New(pr *probe.Prober, clk *simclock.Scheduler, cfg Config) *Monitor {
	return &Monitor{
		pr: pr, clk: clk, cfg: cfg.withDefaults(),
		state: make(map[pairKey]*pairState),
	}
}

// Watch adds a (vantage point, target) pair to the monitored set.
func (m *Monitor) Watch(vp topo.RouterID, target netip.Addr) {
	m.watch(pairKey{vp: vp, target: target})
}

// WatchFrom monitors target from vp using src as the probe source address —
// the deployment mode where the vantage point's pings carry the production
// prefix, so the monitored reachability is exactly what poisoning repairs.
func (m *Monitor) WatchFrom(vp topo.RouterID, src, target netip.Addr) {
	m.watch(pairKey{vp: vp, src: src, target: target})
}

func (m *Monitor) watch(k pairKey) {
	if _, dup := m.state[k]; dup {
		return
	}
	m.pairs = append(m.pairs, k)
	m.state[k] = &pairState{}
}

// Start begins periodic rounds, the first immediately.
func (m *Monitor) Start() {
	if m.started {
		return
	}
	m.started = true
	var tick func()
	tick = func() {
		if !m.started {
			return
		}
		m.Round()
		m.ticker = m.clk.After(m.cfg.Interval, tick)
	}
	tick()
}

// Stop halts monitoring.
func (m *Monitor) Stop() {
	if m.started {
		m.started = false
		m.clk.Cancel(m.ticker)
	}
}

// SetInterval retunes the round cadence. The new interval takes effect
// when the next round re-arms, so an in-flight wait completes on the old
// cadence — a hitless retune, no round is dropped or duplicated.
func (m *Monitor) SetInterval(d time.Duration) {
	if d > 0 {
		m.cfg.Interval = d
	}
}

// Interval returns the current round cadence.
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// Round performs one monitoring round over all pairs immediately.
func (m *Monitor) Round() {
	for _, k := range m.pairs {
		m.roundFor(k)
	}
	if m.OnRound != nil {
		m.OnRound()
	}
}

func (m *Monitor) roundFor(k pairKey) {
	m.obs.rounds.Inc()
	ok := false
	responded := false
	for i := 0; i < m.cfg.PingsPerRound; i++ {
		var rep probe.PingReport
		if k.src.IsValid() {
			rep = m.pr.PingFromAddr(k.vp, k.src, k.target)
		} else {
			rep = m.pr.Ping(k.vp, k.target)
		}
		if rep.Responded {
			responded = true
		}
		if rep.OK {
			ok = true
			break // no need to burn the second ping of the pair
		}
	}
	if m.Atlas != nil && responded {
		m.Atlas.NoteResponsive(k.target, true)
	}
	st := m.state[k]
	if ok {
		if st.current != nil {
			st.current.End = m.clk.Now()
			m.obs.recoveries.Inc()
			if m.OnRecovery != nil {
				m.OnRecovery(st.current)
			}
			st.current = nil
		}
		st.consecFails = 0
		return
	}
	if st.consecFails == 0 {
		st.firstFail = m.clk.Now()
	}
	st.consecFails++
	if st.consecFails == m.cfg.FailThreshold && st.current == nil {
		o := &Outage{VP: k.vp, Target: k.target, Start: st.firstFail}
		st.current = o
		m.obs.outages.Inc()
		m.History = append(m.History, o)
		if m.OnOutage != nil {
			m.OnOutage(o)
		}
	}
}

// Ongoing returns the currently-declared outages.
func (m *Monitor) Ongoing() []*Outage {
	var out []*Outage
	for _, k := range m.pairs {
		if st := m.state[k]; st.current != nil {
			out = append(out, st.current)
		}
	}
	return out
}

// Down reports whether any monitored pair between vp and target (whatever
// its source address) is currently in a declared outage.
func (m *Monitor) Down(vp topo.RouterID, target netip.Addr) bool {
	for _, k := range m.pairs {
		if k.vp == vp && k.target == target && m.state[k].current != nil {
			return true
		}
	}
	return false
}
