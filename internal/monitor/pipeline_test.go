package monitor

import (
	"math/rand"
	"testing"
	"time"

	"lifeguard/internal/nettest"
)

// TestMonitorRecoversInjectedDurations validates the measurement pipeline
// the way the paper's EC2 study depends on it: inject outages of known
// durations and verify the monitor's measured durations match within the
// methodology's quantization (30s rounds, 4-round declaration threshold,
// 90s observable floor).
func TestMonitorRecoversInjectedDurations(t *testing.T) {
	n := nettest.Fig4(t)
	m := New(n.Prober, n.Clk, Config{})
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	m.Watch(n.Hub(nettest.VP1AS), target)
	m.Start()

	rng := rand.New(rand.NewSource(17))
	type episode struct{ injected, measured time.Duration }
	var episodes []episode

	n.Clk.RunFor(2 * time.Minute)
	for i := 0; i < 12; i++ {
		// Durations from 2 to 30 minutes, well above the 90s floor.
		d := time.Duration(2+rng.Intn(29)) * time.Minute
		id := n.ReverseFailure()
		n.Clk.RunFor(d)
		n.Plane.RemoveFailure(id)
		// Let it recover and idle a bit before the next episode.
		n.Clk.RunFor(3 * time.Minute)
		episodes = append(episodes, episode{injected: d})
	}

	if len(m.History) != len(episodes) {
		t.Fatalf("detected %d outages, injected %d", len(m.History), len(episodes))
	}
	// The measured duration may be off by up to ~2 rounds on each side
	// (detection quantization + recovery round).
	const slack = 2 * 30 * time.Second
	for i, o := range m.History {
		if o.End == 0 {
			t.Fatalf("outage %d never recovered", i)
		}
		measured := o.Duration(n.Clk.Now())
		injected := episodes[i].injected
		if measured < injected-slack || measured > injected+slack {
			t.Fatalf("outage %d: measured %v, injected %v", i, measured, injected)
		}
	}
}

// TestMonitorFloorsShortBlips confirms the 90-second observability floor:
// blips shorter than threshold×interval are invisible, ones just above are
// caught.
func TestMonitorFloorsShortBlips(t *testing.T) {
	n := nettest.Fig4(t)
	m := New(n.Prober, n.Clk, Config{})
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	m.Watch(n.Hub(nettest.VP1AS), target)
	m.Start()
	n.Clk.RunFor(time.Minute)

	// 60s blip: at most 2 failed rounds — invisible.
	id := n.ReverseFailure()
	n.Clk.RunFor(60 * time.Second)
	n.Plane.RemoveFailure(id)
	n.Clk.RunFor(3 * time.Minute)
	if len(m.History) != 0 {
		t.Fatalf("60s blip detected: %+v", m.History)
	}

	// 3-minute outage: 6 failed rounds — detected.
	id = n.ReverseFailure()
	n.Clk.RunFor(3 * time.Minute)
	n.Plane.RemoveFailure(id)
	n.Clk.RunFor(3 * time.Minute)
	if len(m.History) != 1 {
		t.Fatalf("3m outage missed: %+v", m.History)
	}
}
