package monitor

import (
	"testing"
	"time"

	"lifeguard/internal/nettest"
	"lifeguard/internal/topo"
)

func setup(t *testing.T) (*nettest.Net, *Monitor) {
	t.Helper()
	n := nettest.Fig4(t)
	m := New(n.Prober, n.Clk, Config{})
	m.Watch(n.Hub(nettest.VP1AS), n.Top.Router(n.Hub(nettest.TargetAS)).Addr)
	return n, m
}

func TestNoOutageOnHealthyPath(t *testing.T) {
	n, m := setup(t)
	m.Start()
	n.Clk.RunUntil(10 * time.Minute)
	if len(m.History) != 0 {
		t.Fatalf("outages on healthy path: %+v", m.History)
	}
}

func TestOutageDeclaredAfterThreshold(t *testing.T) {
	n, m := setup(t)
	var declared []*Outage
	m.OnOutage = func(o *Outage) { declared = append(declared, o) }
	m.Start()
	n.Clk.RunUntil(5 * time.Minute)
	failAt := n.Clk.Now()
	n.ReverseFailure()
	n.Clk.RunUntil(failAt + 3*30*time.Second + time.Second)
	if len(declared) != 0 {
		t.Fatal("outage declared before 4 failed rounds")
	}
	n.Clk.RunUntil(failAt + 5*30*time.Second)
	if len(declared) != 1 {
		t.Fatalf("declared = %d, want 1", len(declared))
	}
	o := declared[0]
	if o.Start < failAt {
		t.Fatalf("outage start %v before failure %v", o.Start, failAt)
	}
	if !m.Down(o.VP, o.Target) {
		t.Fatal("Down should report true")
	}
	if got := m.Ongoing(); len(got) != 1 || got[0] != o {
		t.Fatalf("Ongoing = %+v", got)
	}
}

func TestRecoveryEndsOutage(t *testing.T) {
	n, m := setup(t)
	var recovered []*Outage
	m.OnRecovery = func(o *Outage) { recovered = append(recovered, o) }
	m.Start()
	n.Clk.RunUntil(time.Minute)
	id := n.ReverseFailure()
	n.Clk.RunUntil(20 * time.Minute)
	if len(m.History) != 1 {
		t.Fatalf("history = %d, want 1", len(m.History))
	}
	n.Plane.RemoveFailure(id)
	n.Clk.RunUntil(25 * time.Minute)
	if len(recovered) != 1 {
		t.Fatalf("recovered = %d, want 1", len(recovered))
	}
	o := recovered[0]
	if o.End == 0 || o.End <= o.Start {
		t.Fatalf("bad outage window: %+v", o)
	}
	// The measured duration must roughly match the injected ~19 minutes.
	d := o.Duration(n.Clk.Now())
	if d < 15*time.Minute || d > 25*time.Minute {
		t.Fatalf("duration = %v", d)
	}
	if m.Down(o.VP, o.Target) {
		t.Fatal("pair still marked down after recovery")
	}
}

func TestMinimumObservableOutage(t *testing.T) {
	// A blip shorter than threshold*interval never becomes an outage —
	// the 90s floor of the paper's methodology.
	n, m := setup(t)
	m.Start()
	n.Clk.RunUntil(time.Minute)
	id := n.ReverseFailure()
	n.Clk.RunFor(65 * time.Second) // two rounds fail
	n.Plane.RemoveFailure(id)
	n.Clk.RunUntil(30 * time.Minute)
	if len(m.History) != 0 {
		t.Fatalf("short blip declared as outage: %+v", m.History)
	}
}

func TestWatchDedup(t *testing.T) {
	n, m := setup(t)
	m.Watch(n.Hub(nettest.VP1AS), n.Top.Router(n.Hub(nettest.TargetAS)).Addr)
	if len(m.pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(m.pairs))
	}
}

func TestStopHaltsProbing(t *testing.T) {
	n, m := setup(t)
	m.Start()
	n.Clk.RunUntil(time.Minute)
	m.Stop()
	sent := n.Prober.Sent
	n.Clk.RunUntil(time.Hour)
	if n.Prober.Sent != sent {
		t.Fatal("probing continued after Stop")
	}
}

func TestPartialOutageOnlyAffectedVP(t *testing.T) {
	n := nettest.Fig4(t)
	m := New(n.Prober, n.Clk, Config{})
	target := n.Top.Router(n.Hub(nettest.TargetAS)).Addr
	m.Watch(n.Hub(nettest.VP1AS), target)
	m.Watch(n.Hub(nettest.VP5AS), target)
	m.Start()
	n.Clk.RunUntil(time.Minute)
	n.ReverseFailure() // only VP1's reverse direction breaks
	n.Clk.RunUntil(10 * time.Minute)
	if len(m.History) != 1 {
		t.Fatalf("history = %+v, want exactly the VP1 outage", m.History)
	}
	if m.History[0].VP != n.Hub(nettest.VP1AS) {
		t.Fatal("wrong VP blamed")
	}
	if m.Down(n.Hub(nettest.VP5AS), target) {
		t.Fatal("VP5 should be unaffected — this is a partial outage")
	}
}

func TestOutageDurationHelper(t *testing.T) {
	o := Outage{Start: time.Minute}
	if o.Duration(3*time.Minute) != 2*time.Minute {
		t.Fatal("ongoing duration wrong")
	}
	o.End = 2 * time.Minute
	if o.Duration(100*time.Minute) != time.Minute {
		t.Fatal("resolved duration wrong")
	}
	_ = topo.ASN(0) // keep import
}
