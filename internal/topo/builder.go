package topo

import (
	"fmt"
	"net/netip"
	"sort"
)

// Builder assembles a Topology. Methods panic on impossible inputs (unknown
// AS, relating an AS to itself): topology construction is programmer-driven
// and such errors are bugs, not runtime conditions. Build validates global
// invariants and returns an error for inconsistencies that only appear once
// the whole graph is known.
type Builder struct {
	ases    map[ASN]*AS
	asOrder []ASN
	routers []Router
	links   []Link
	rels    map[ASN]map[ASN]Rel
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		ases: make(map[ASN]*AS),
		rels: make(map[ASN]map[ASN]Rel),
	}
}

// AddAS registers an AS. The returned pointer may be used to set policy
// quirks before Build. Adding a duplicate ASN panics.
func (b *Builder) AddAS(asn ASN, name string) *AS {
	if _, dup := b.ases[asn]; dup {
		panic(fmt.Sprintf("topo: duplicate AS %d", asn))
	}
	if name == "" {
		name = fmt.Sprintf("AS%d", asn)
	}
	as := &AS{ASN: asn, Name: name, Tier: 3, MaxOwnASOccurs: 1}
	b.ases[asn] = as
	b.asOrder = append(b.asOrder, asn)
	return as
}

// AddRouter creates a router inside asn and returns its ID. The router is
// responsive by default.
func (b *Builder) AddRouter(asn ASN, name string) RouterID {
	as, ok := b.ases[asn]
	if !ok {
		panic(fmt.Sprintf("topo: AddRouter for unknown AS %d", asn))
	}
	idx := len(as.Routers)
	id := RouterID(len(b.routers))
	if name == "" {
		name = fmt.Sprintf("%s/r%d", as.Name, idx)
	}
	b.routers = append(b.routers, Router{
		ID:         id,
		AS:         asn,
		Name:       name,
		Addr:       RouterAddr(asn, idx),
		Responsive: true,
	})
	as.Routers = append(as.Routers, id)
	return id
}

// ConnectRouters links two routers. Intra-AS links shape traceroute paths;
// inter-AS links realize an AS adjacency and require Relate to have
// established (or to later establish) a relationship.
func (b *Builder) ConnectRouters(x, y RouterID) {
	if int(x) >= len(b.routers) || int(y) >= len(b.routers) {
		panic("topo: ConnectRouters with unknown router")
	}
	if x == y {
		panic("topo: self-link")
	}
	b.links = append(b.links, Link{A: x, B: y})
}

// Related reports whether a relationship between a and c has been declared.
func (b *Builder) Related(a, c ASN) bool { return b.rels[a][c] != RelNone }

// Relate records that provider sells transit to customer.
func (b *Builder) Provider(customer, provider ASN) { b.relate(customer, provider, RelProvider) }

// Peer records a settlement-free peering between a and b.
func (b *Builder) Peer(a, c ASN) { b.relate(a, c, RelPeer) }

func (b *Builder) relate(a, c ASN, rel Rel) {
	if a == c {
		panic("topo: AS related to itself")
	}
	for _, asn := range []ASN{a, c} {
		if _, ok := b.ases[asn]; !ok {
			panic(fmt.Sprintf("topo: relate unknown AS %d", asn))
		}
	}
	if b.rels[a] == nil {
		b.rels[a] = make(map[ASN]Rel)
	}
	if b.rels[c] == nil {
		b.rels[c] = make(map[ASN]Rel)
	}
	if old := b.rels[a][c]; old != RelNone && old != rel {
		panic(fmt.Sprintf("topo: conflicting relationship %d-%d: %v vs %v", a, c, old, rel))
	}
	b.rels[a][c] = rel
	b.rels[c][a] = rel.Invert()
}

// ConnectAS is a convenience that creates one border router on each side
// (reusing the AS's first router as a hub if present) and links them,
// returning the new link's endpoints as (router in a, router in c).
func (b *Builder) ConnectAS(a, c ASN) (RouterID, RouterID) {
	ra := b.AddRouter(a, fmt.Sprintf("%s/bdr-%d", b.ases[a].Name, c))
	rc := b.AddRouter(c, fmt.Sprintf("%s/bdr-%d", b.ases[c].Name, a))
	b.ConnectRouters(ra, rc)
	// Attach each border router to its AS's first (hub) router so that
	// intra-AS paths exist.
	if hub := b.ases[a].Routers[0]; hub != ra {
		b.ConnectRouters(hub, ra)
	}
	if hub := b.ases[c].Routers[0]; hub != rc {
		b.ConnectRouters(hub, rc)
	}
	return ra, rc
}

// Build validates and freezes the topology.
func (b *Builder) Build() (*Topology, error) {
	t := &Topology{
		ases:         b.ases,
		asList:       append([]ASN(nil), b.asOrder...),
		routers:      b.routers,
		links:        b.links,
		rels:         b.rels,
		routerAdj:    make(map[RouterID][]RouterID),
		asBorder:     make(map[ASPair][]Link),
		addrToRouter: make(map[netip.Addr]RouterID, len(b.routers)),
	}
	sortASNs(t.asList)
	for i := range t.routers {
		r := &t.routers[i]
		if _, dup := t.addrToRouter[r.Addr]; dup {
			return nil, fmt.Errorf("topo: duplicate router address %v", r.Addr)
		}
		t.addrToRouter[r.Addr] = r.ID
	}
	for _, l := range t.links {
		ra, rb := &t.routers[l.A], &t.routers[l.B]
		t.routerAdj[l.A] = append(t.routerAdj[l.A], l.B)
		t.routerAdj[l.B] = append(t.routerAdj[l.B], l.A)
		if ra.AS != rb.AS {
			pair := MakeASPair(ra.AS, rb.AS)
			t.asBorder[pair] = append(t.asBorder[pair], l)
			if t.rels[ra.AS][rb.AS] == RelNone {
				return nil, fmt.Errorf("topo: inter-AS link %d-%d without relationship %d-%d",
					l.A, l.B, ra.AS, rb.AS)
			}
		}
	}
	// Every AS relationship must be realized by at least one border link
	// if both ASes have routers; ASes may also be modelled at pure AS
	// level (no routers), which is fine for control-plane-only studies.
	for a, m := range t.rels {
		for c := range m {
			if len(t.ases[a].Routers) > 0 && len(t.ases[c].Routers) > 0 {
				if len(t.asBorder[MakeASPair(a, c)]) == 0 {
					return nil, fmt.Errorf("topo: relationship %d-%d has no border link", a, c)
				}
			}
		}
	}
	// Each AS with routers must have an internally connected router graph,
	// otherwise the data plane cannot cross it.
	for _, asn := range t.asList {
		if err := t.checkIntraConnected(asn); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *Topology) checkIntraConnected(asn ASN) error {
	rs := t.ases[asn].Routers
	if len(rs) <= 1 {
		return nil
	}
	seen := map[RouterID]bool{rs[0]: true}
	queue := []RouterID{rs[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range t.routerAdj[cur] {
			if t.routers[n].AS == asn && !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	if len(seen) != len(rs) {
		return fmt.Errorf("topo: AS %d router graph is disconnected (%d/%d reachable)",
			asn, len(seen), len(rs))
	}
	return nil
}

func sortASNs(s []ASN) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
