package topo

import (
	"fmt"
	"net/netip"
)

// Address plan. Each AS n owns the /16 block whose first two octets encode
// 256+n, i.e. AS 1 owns 1.1.0.0/16 ... AS 5000 owns 20.137.0.0/16. Within
// the block:
//
//	x.y.0.0   – x.y.239.255   router interface addresses
//	x.y.240.0/24               production prefix (live traffic)
//	x.y.240.0/23               sentinel prefix (contains production + unused)
//	x.y.241.0/24               the unused half of the sentinel; probes
//	                           sourced here always route via the sentinel
//
// This mirrors §4.2/§7.2: the sentinel is a less-specific containing both
// the production prefix and an otherwise-unused prefix.

const blockBase = 256 // AS n's block starts at octets (256+n)>>8, (256+n)&0xff

// MaxASN is the largest ASN the address plan supports. The bound comes from
// the plan itself — two octets encode 256+n, and the 256-block offset (which
// keeps blocks out of 0.0.0.0/8) eats the top of that space — not from the
// ASN type, which is 32-bit. ASes numbered above MaxASN can still route
// (announce explicit prefixes, appear in paths) but own no derived block.
const MaxASN ASN = 0xFFFF - blockBase

// Block returns the /16 address block owned by asn.
func Block(asn ASN) netip.Prefix {
	if asn > MaxASN {
		panic(fmt.Sprintf("topo: ASN %d exceeds MaxASN %d", asn, MaxASN))
	}
	n := blockBase + int(asn)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(n >> 8), byte(n)}), 16)
}

// RouterAddr returns the interface address for the idx-th router of asn.
func RouterAddr(asn ASN, idx int) netip.Addr {
	if idx < 0 || idx >= 240*256 {
		panic(fmt.Sprintf("topo: router index %d out of range for AS %d", idx, asn))
	}
	b := Block(asn).Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], byte(idx >> 8), byte(idx)})
}

// ProductionPrefix returns asn's production /24 — the prefix carrying live
// traffic, the one LIFEGUARD poisons.
func ProductionPrefix(asn ASN) netip.Prefix {
	b := Block(asn).Addr().As4()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 240, 0}), 24)
}

// SentinelPrefix returns asn's sentinel /23, a less-specific covering the
// production prefix plus an unused /24.
func SentinelPrefix(asn ASN) netip.Prefix {
	b := Block(asn).Addr().As4()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 240, 0}), 23)
}

// ProductionAddr returns a representative host address inside the
// production prefix (used as a probe target).
func ProductionAddr(asn ASN) netip.Addr {
	b := Block(asn).Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 240, 1})
}

// SentinelProbeAddr returns a host address in the unused half of the
// sentinel. Traffic to/from this address always routes via the sentinel
// prefix regardless of how the production prefix is announced.
func SentinelProbeAddr(asn ASN) netip.Addr {
	b := Block(asn).Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 241, 1})
}

// NonAdjacentSentinelPrefix returns an unused /24 that does NOT cover the
// production prefix — the §7.2 alternative sentinel for ASes that have
// spare address space but no covering less-specific. It can detect repair
// but provides no backup route for captives.
func NonAdjacentSentinelPrefix(asn ASN) netip.Prefix {
	b := Block(asn).Addr().As4()
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 242, 0}), 24)
}

// NonAdjacentProbeAddr returns a host address inside the non-adjacent
// sentinel prefix.
func NonAdjacentProbeAddr(asn ASN) netip.Addr {
	b := Block(asn).Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 242, 1})
}

// OwnerOf returns the AS whose /16 block contains addr, and false if the
// address is outside every block this plan can produce.
func OwnerOf(addr netip.Addr) (ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	b := addr.As4()
	n := int(b[0])<<8 | int(b[1])
	if n < blockBase || n-blockBase > 0xFFFF {
		return 0, false
	}
	return ASN(n - blockBase), true
}
