// Package topo models the simulated internetwork: autonomous systems with
// Gao–Rexford business relationships, routers inside ASes, the links between
// them, and the address blocks each AS owns. It is the substrate every other
// package builds on: the BGP engine computes routes over the AS graph, and
// the data plane forwards probes hop-by-hop over the router graph.
package topo

import (
	"fmt"
	"net/netip"
	"sort"
)

// ASN identifies an autonomous system. The simulator supports 32-bit ASNs
// (RFC 6793), so control-plane studies can use the full modern numbering
// space. The address plan in addr.go still derives /16 blocks from the low
// 16 bits, so ASes above MaxASN participate in routing but own no address
// block.
type ASN uint32

// RouterID indexes a router within a Topology.
type RouterID uint32

// Rel is the business relationship of a neighbor from an AS's point of view.
type Rel int8

// Relationship values follow the Gao–Rexford model.
const (
	RelNone     Rel = iota // not adjacent
	RelCustomer            // the neighbor is my customer (routes most preferred)
	RelPeer                // settlement-free peer
	RelProvider            // the neighbor is my provider (routes least preferred)
)

// String returns the relationship name.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "none"
	}
}

// Invert flips the relationship to the other party's point of view.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return r
	}
}

// AS describes one autonomous system, including the policy quirks from §7.1
// of the paper that affect whether poisoning works against it.
type AS struct {
	ASN  ASN
	Name string
	// Tier is 1 for the clique of transit-free networks, 2 for other
	// transit networks, 3 for stubs. Informational; policy derives from
	// relationships, not tiers.
	Tier int

	// MaxOwnASOccurs is the number of times this AS tolerates its own ASN
	// in a received path before rejecting it as a loop. 1 is standard BGP.
	// 2 models AS286-style remote-site configurations (a single poison is
	// accepted; a doubled poison is dropped). 0 disables loop detection
	// entirely — such an AS cannot be poisoned at all.
	MaxOwnASOccurs int

	// FilterPeersFromCustomers models Cogent-style filtering: reject any
	// route learned from a customer whose AS path contains one of this
	// AS's peers (§7.1).
	FilterPeersFromCustomers bool

	// StripCommunities models transit networks that do not propagate BGP
	// community values they receive (§2.3 observes Tier-1s doing this).
	StripCommunities bool

	// Routers lists the routers belonging to this AS.
	Routers []RouterID
}

// Router is a single forwarding element. Routers give traceroute its
// hop-by-hop detail and carry the responsiveness quirks that make failure
// isolation hard.
type Router struct {
	ID   RouterID
	AS   ASN
	Name string
	Addr netip.Addr

	// Responsive is false for routers configured to ignore ICMP probes.
	// The atlas records this so isolation can distinguish "configured
	// silent" from "cut off" (§4.1.2).
	Responsive bool

	// RateLimitPerRound caps how many probe replies the router sends per
	// monitoring round; 0 means unlimited.
	RateLimitPerRound int
}

// Link is an undirected adjacency between two routers. A link whose
// endpoints are in different ASes realizes an AS-level adjacency.
type Link struct {
	A, B RouterID
}

// ASPair is a canonically-ordered pair of ASNs, used as a map key for
// AS-level adjacencies.
type ASPair struct{ Lo, Hi ASN }

// MakeASPair builds the canonical pair for (a, b).
func MakeASPair(a, b ASN) ASPair {
	if a > b {
		a, b = b, a
	}
	return ASPair{Lo: a, Hi: b}
}

// Path is an AS-level path, origin last (so path[0] is the AS adjacent to
// the viewer and path[len-1] originated the prefix), matching how BGP AS
// paths read.
type Path []ASN

// Contains reports whether the path includes asn.
func (p Path) Contains(asn ASN) bool { return p.Count(asn) > 0 }

// Count returns the number of occurrences of asn in the path.
func (p Path) Count(asn ASN) int {
	n := 0
	for _, a := range p {
		if a == asn {
			n++
		}
	}
	return n
}

// Origin returns the last AS in the path and false if the path is empty.
func (p Path) Origin() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[len(p)-1], true
}

// Clone returns an independent copy.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Prepend returns a new path with asn at the front.
func (p Path) Prepend(asn ASN) Path {
	out := make(Path, 0, len(p)+1)
	out = append(out, asn)
	return append(out, p...)
}

// String renders the path as "3356 174 7018".
func (p Path) String() string {
	s := ""
	for i, a := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", a)
	}
	return s
}

// Topology is the immutable internetwork a simulation runs over. Build one
// with a Builder. Mutable per-run state (RIBs, failures) lives elsewhere.
type Topology struct {
	ases    map[ASN]*AS
	asList  []ASN // sorted, for deterministic iteration
	routers []Router
	links   []Link

	rels map[ASN]map[ASN]Rel

	// routerAdj is the undirected router-level adjacency list.
	routerAdj map[RouterID][]RouterID
	// asBorder[pair] lists the router-level links realizing an AS adjacency.
	asBorder map[ASPair][]Link

	addrToRouter map[netip.Addr]RouterID
}

// AS returns the AS record for asn, or nil if unknown.
func (t *Topology) AS(asn ASN) *AS { return t.ases[asn] }

// ASNs returns all ASNs in ascending order.
func (t *Topology) ASNs() []ASN { return t.asList }

// NumASes reports the number of ASes.
func (t *Topology) NumASes() int { return len(t.asList) }

// NumRouters reports the number of routers.
func (t *Topology) NumRouters() int { return len(t.routers) }

// Router returns the router record for id.
func (t *Topology) Router(id RouterID) *Router { return &t.routers[id] }

// RouterByAddr resolves an interface address to its router.
func (t *Topology) RouterByAddr(a netip.Addr) (*Router, bool) {
	id, ok := t.addrToRouter[a]
	if !ok {
		return nil, false
	}
	return &t.routers[id], true
}

// Rel reports the relationship of neighbor as seen from asn.
func (t *Topology) Rel(asn, neighbor ASN) Rel {
	return t.rels[asn][neighbor]
}

// Neighbors returns asn's neighbor ASNs in ascending order.
func (t *Topology) Neighbors(asn ASN) []ASN {
	m := t.rels[asn]
	out := make([]ASN, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Customers returns asn's customer ASNs in ascending order.
func (t *Topology) Customers(asn ASN) []ASN { return t.neighborsWithRel(asn, RelCustomer) }

// Providers returns asn's provider ASNs in ascending order.
func (t *Topology) Providers(asn ASN) []ASN { return t.neighborsWithRel(asn, RelProvider) }

// Peers returns asn's peer ASNs in ascending order.
func (t *Topology) Peers(asn ASN) []ASN { return t.neighborsWithRel(asn, RelPeer) }

func (t *Topology) neighborsWithRel(asn ASN, want Rel) []ASN {
	var out []ASN
	for n, r := range t.rels[asn] {
		if r == want {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Adjacent reports whether two ASes have a relationship.
func (t *Topology) Adjacent(a, b ASN) bool { return t.rels[a][b] != RelNone }

// BorderLinks returns the router-level links that realize the AS adjacency
// (a, b), in creation order.
func (t *Topology) BorderLinks(a, b ASN) []Link {
	return t.asBorder[MakeASPair(a, b)]
}

// RouterNeighbors returns the routers adjacent to id.
func (t *Topology) RouterNeighbors(id RouterID) []RouterID { return t.routerAdj[id] }

// Links returns all router-level links.
func (t *Topology) Links() []Link { return t.links }

// IntraASNeighbors returns the routers adjacent to id within the same AS.
func (t *Topology) IntraASNeighbors(id RouterID) []RouterID {
	self := t.routers[id].AS
	var out []RouterID
	for _, n := range t.routerAdj[id] {
		if t.routers[n].AS == self {
			out = append(out, n)
		}
	}
	return out
}

// BorderRouters returns, for AS a, the router pairs (local, remote) that
// connect a to neighbor b.
func (t *Topology) BorderRouters(a, b ASN) [][2]RouterID {
	var out [][2]RouterID
	for _, l := range t.BorderLinks(a, b) {
		la, lb := l.A, l.B
		if t.routers[la].AS != a {
			la, lb = lb, la
		}
		out = append(out, [2]RouterID{la, lb})
	}
	return out
}
