package topo

import (
	"testing"
	"testing/quick"
)

// build3 returns a tiny stub-transit-stub topology:
// AS1 (stub) --provider--> AS2 (transit) <--provider-- AS3 (stub)
func build3(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder()
	b.AddAS(1, "one")
	b.AddAS(2, "two").Tier = 2
	b.AddAS(3, "three")
	b.AddRouter(1, "")
	b.AddRouter(2, "")
	b.AddRouter(3, "")
	b.Provider(1, 2)
	b.Provider(3, 2)
	b.ConnectAS(1, 2)
	b.ConnectAS(3, 2)
	top, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return top
}

func TestRelSymmetry(t *testing.T) {
	top := build3(t)
	if top.Rel(1, 2) != RelProvider {
		t.Fatalf("Rel(1,2) = %v, want provider", top.Rel(1, 2))
	}
	if top.Rel(2, 1) != RelCustomer {
		t.Fatalf("Rel(2,1) = %v, want customer", top.Rel(2, 1))
	}
	if top.Rel(1, 3) != RelNone {
		t.Fatalf("Rel(1,3) = %v, want none", top.Rel(1, 3))
	}
}

func TestNeighborsAndRoleLists(t *testing.T) {
	top := build3(t)
	if n := top.Neighbors(2); len(n) != 2 || n[0] != 1 || n[1] != 3 {
		t.Fatalf("Neighbors(2) = %v", n)
	}
	if c := top.Customers(2); len(c) != 2 {
		t.Fatalf("Customers(2) = %v", c)
	}
	if p := top.Providers(1); len(p) != 1 || p[0] != 2 {
		t.Fatalf("Providers(1) = %v", p)
	}
	if p := top.Peers(1); len(p) != 0 {
		t.Fatalf("Peers(1) = %v", p)
	}
}

func TestBorderLinks(t *testing.T) {
	top := build3(t)
	bl := top.BorderLinks(1, 2)
	if len(bl) != 1 {
		t.Fatalf("BorderLinks(1,2) = %v", bl)
	}
	br := top.BorderRouters(1, 2)
	if len(br) != 1 {
		t.Fatal("BorderRouters(1,2) empty")
	}
	if top.Router(br[0][0]).AS != 1 || top.Router(br[0][1]).AS != 2 {
		t.Fatalf("BorderRouters order wrong: %v", br)
	}
	// Symmetric call flips the pair.
	br2 := top.BorderRouters(2, 1)
	if top.Router(br2[0][0]).AS != 2 {
		t.Fatalf("BorderRouters(2,1) local side wrong: %v", br2)
	}
}

func TestAddrPlanRoundTrip(t *testing.T) {
	for _, asn := range []ASN{0, 1, 255, 256, 5000, MaxASN} {
		blk := Block(asn)
		if got, ok := OwnerOf(blk.Addr()); !ok || got != asn {
			t.Fatalf("OwnerOf(Block(%d)) = %v, %v", asn, got, ok)
		}
		if !blk.Contains(RouterAddr(asn, 7)) {
			t.Fatalf("router addr outside block for AS %d", asn)
		}
		if !SentinelPrefix(asn).Contains(ProductionAddr(asn)) {
			t.Fatalf("sentinel does not contain production for AS %d", asn)
		}
		if !SentinelPrefix(asn).Contains(SentinelProbeAddr(asn)) {
			t.Fatalf("sentinel does not contain probe addr for AS %d", asn)
		}
		if ProductionPrefix(asn).Contains(SentinelProbeAddr(asn)) {
			t.Fatalf("probe addr must be outside production prefix for AS %d", asn)
		}
		if ProductionPrefix(asn).Bits() != 24 || SentinelPrefix(asn).Bits() != 23 {
			t.Fatal("prefix lengths wrong")
		}
	}
}

func TestAddrPlanDisjointAcrossASes(t *testing.T) {
	f := func(a, b ASN) bool {
		a, b = a%(MaxASN+1), b%(MaxASN+1)
		if a == b {
			return true
		}
		return !Block(a).Overlaps(Block(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouterByAddr(t *testing.T) {
	top := build3(t)
	r0 := top.Router(0)
	got, ok := top.RouterByAddr(r0.Addr)
	if !ok || got.ID != 0 {
		t.Fatalf("RouterByAddr(%v) = %v, %v", r0.Addr, got, ok)
	}
	if _, ok := top.RouterByAddr(ProductionAddr(1)); ok {
		t.Fatal("production addr should not resolve to a router")
	}
}

func TestPathHelpers(t *testing.T) {
	p := Path{3356, 174, 7018}
	if !p.Contains(174) || p.Contains(1) {
		t.Fatal("Contains wrong")
	}
	if p.Count(3356) != 1 {
		t.Fatal("Count wrong")
	}
	o, ok := p.Origin()
	if !ok || o != 7018 {
		t.Fatalf("Origin = %v, %v", o, ok)
	}
	if _, ok := Path(nil).Origin(); ok {
		t.Fatal("empty path Origin should be false")
	}
	q := p.Prepend(1)
	if len(q) != 4 || q[0] != 1 || !q[1:].Equal(p) {
		t.Fatalf("Prepend = %v", q)
	}
	if p.String() != "3356 174 7018" {
		t.Fatalf("String = %q", p.String())
	}
	c := p.Clone()
	c[0] = 9
	if p[0] == 9 {
		t.Fatal("Clone aliases original")
	}
}

func TestRelInvert(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer {
		t.Fatal("customer/provider inversion wrong")
	}
	if RelPeer.Invert() != RelPeer || RelNone.Invert() != RelNone {
		t.Fatal("peer/none inversion wrong")
	}
}

func TestBuildRejectsLinkWithoutRelationship(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	r1 := b.AddRouter(1, "")
	r2 := b.AddRouter(2, "")
	b.ConnectRouters(r1, r2)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject inter-AS link without relationship")
	}
}

func TestBuildRejectsRelationshipWithoutLink(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	b.AddRouter(1, "")
	b.AddRouter(2, "")
	b.Provider(1, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject routerful relationship without border link")
	}
}

func TestBuildAllowsPureASLevel(t *testing.T) {
	// ASes without routers can be related without border links
	// (control-plane-only studies).
	b := NewBuilder()
	b.AddAS(1, "")
	b.AddAS(2, "")
	b.Provider(1, 2)
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestBuildRejectsDisconnectedIntraAS(t *testing.T) {
	b := NewBuilder()
	b.AddAS(1, "")
	b.AddRouter(1, "")
	b.AddRouter(1, "") // never linked to the first
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should reject disconnected intra-AS graph")
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	b := NewBuilder()
	b.AddAS(1, "")
	expectPanic("dup AS", func() { b.AddAS(1, "") })
	expectPanic("unknown AS router", func() { b.AddRouter(9, "") })
	expectPanic("self relation", func() { b.Peer(1, 1) })
	expectPanic("unknown relation", func() { b.Provider(1, 9) })
	r := b.AddRouter(1, "")
	expectPanic("self link", func() { b.ConnectRouters(r, r) })
	b2 := NewBuilder()
	b2.AddAS(1, "")
	b2.AddAS(2, "")
	b2.Peer(1, 2)
	expectPanic("conflicting rel", func() { b2.Provider(1, 2) })
}

func TestConnectASCreatesIntraLinks(t *testing.T) {
	top := build3(t)
	// AS2 has hub + two border routers; hub must reach both.
	as2 := top.AS(2)
	if len(as2.Routers) != 3 {
		t.Fatalf("AS2 routers = %d, want 3", len(as2.Routers))
	}
	hub := as2.Routers[0]
	if n := top.IntraASNeighbors(hub); len(n) != 2 {
		t.Fatalf("hub intra neighbors = %v", n)
	}
}

func TestMakeASPairCanonical(t *testing.T) {
	if MakeASPair(5, 3) != MakeASPair(3, 5) {
		t.Fatal("pair not canonical")
	}
}
