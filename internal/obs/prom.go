package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// this package emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4: families in sorted-name order, each preceded by its
// # HELP / # TYPE header, histograms expanded into cumulative _bucket
// series (le-labelled, +Inf last) plus _sum and _count. Deterministic for
// a given snapshot.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	// Group series into families. Snapshot order is sorted by series key,
	// which keeps one family's series in label order but can interleave
	// families (an unlabelled "foo" sorts before "foo_bar" sorts before
	// "foo{…}"), so group explicitly.
	byFamily := make(map[string][]Metric)
	names := make([]string, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		if _, ok := byFamily[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byFamily[m.Name] = append(byFamily[m.Name], m)
	}
	sort.Strings(names)

	for _, name := range names {
		fam := byFamily[name]
		if help, ok := s.Help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam[0].Kind); err != nil {
			return err
		}
		for _, m := range fam {
			if err := writeSeries(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m Metric) error {
	switch m.Kind {
	case "histogram":
		for _, b := range m.Buckets {
			if err := writeSample(w, m.Name+"_bucket", m.Labels, "le", formatFloat(b.UpperBound), float64(b.Cumulative)); err != nil {
				return err
			}
		}
		if err := writeSample(w, m.Name+"_bucket", m.Labels, "le", "+Inf", float64(m.Count)); err != nil {
			return err
		}
		if err := writeSample(w, m.Name+"_sum", m.Labels, "", "", m.Sum); err != nil {
			return err
		}
		return writeSample(w, m.Name+"_count", m.Labels, "", "", float64(m.Count))
	default:
		return writeSample(w, m.Name, m.Labels, "", "", float64(m.Value))
	}
}

// writeSample emits one "name{labels} value" line, appending an extra
// label (the histogram le) when extraKey is non-empty.
func writeSample(w io.Writer, name string, labels []Label, extraKey, extraVal string, value float64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a sample value the shortest round-trippable way.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
