package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("lifeguard_test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("lifeguard_test_ops_total"); again != c {
		t.Fatalf("re-registration returned a different handle")
	}

	g := r.Gauge("lifeguard_test_depth")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lifeguard_test_latency_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %v, want 106", h.Sum())
	}
	m := findMetric(t, r, "lifeguard_test_latency_seconds")
	// le semantics: 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 overflows.
	want := []Bucket{{1, 2}, {2, 3}, {4, 4}}
	if !reflect.DeepEqual(m.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", m.Buckets, want)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry = Disabled
	c := r.Counter("lifeguard_test_ops_total")
	g := r.Gauge("lifeguard_test_depth")
	h := r.Histogram("lifeguard_test_latency_seconds", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatalf("disabled registry handed out non-nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(9)
	g.Dec()
	h.Observe(1.5)
	r.Describe("x", "y")
	r.Merge(New())
	if !r.Snapshot().equal(Snapshot{}) {
		t.Fatalf("disabled registry produced a non-empty snapshot")
	}
	if r.Enabled() {
		t.Fatalf("nil registry claims Enabled")
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Registered deliberately out of order, with labels out of order.
		r.Counter("lifeguard_zz_total")
		r.Counter("lifeguard_aa_total").Add(2)
		r.Counter("lifeguard_mm_total", L("reason", "loop"), L("plane", "v4"))
		r.Counter("lifeguard_mm_total", L("plane", "v4"), L("reason", "drop")).Inc()
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if !s1.equal(s2) {
		t.Fatalf("same construction produced different snapshots:\n%+v\n%+v", s1, s2)
	}
	var prev string
	for _, m := range s1.Metrics {
		if k := m.key(); k <= prev {
			t.Fatalf("snapshot not in sorted series-key order: %q after %q", k, prev)
		} else {
			prev = k
		}
	}
	// Label order at the call site must not matter.
	if s1.Metrics[1].key() != `lifeguard_mm_total{plane="v4",reason="drop"}` {
		t.Fatalf("labels not canonicalized: %q", s1.Metrics[1].key())
	}
}

func TestMergeFoldsByAddition(t *testing.T) {
	trial := func(n int64) *Registry {
		r := New()
		r.Describe("lifeguard_test_ops_total", "ops")
		r.Counter("lifeguard_test_ops_total").Add(n)
		r.Gauge("lifeguard_test_routes").Add(n * 2)
		h := r.Histogram("lifeguard_test_ms", []float64{1, 10})
		h.Observe(float64(n))
		return r
	}
	merge := func(order []int64) Snapshot {
		m := New()
		for _, n := range order {
			m.Merge(trial(n))
		}
		return m.Snapshot()
	}
	a := merge([]int64{1, 5, 20})
	b := merge([]int64{1, 5, 20})
	if !a.equal(b) {
		t.Fatalf("identical merge sequences differ")
	}
	got := findMetricIn(t, a, "lifeguard_test_ops_total")
	if got.Value != 26 {
		t.Fatalf("merged counter = %d, want 26", got.Value)
	}
	if g := findMetricIn(t, a, "lifeguard_test_routes"); g.Value != 52 {
		t.Fatalf("merged gauge = %d, want 52", g.Value)
	}
	h := findMetricIn(t, a, "lifeguard_test_ms")
	if h.Count != 3 || h.Sum != 26 {
		t.Fatalf("merged histogram count=%d sum=%v, want 3/26", h.Count, h.Sum)
	}
	if want := []Bucket{{1, 1}, {10, 2}}; !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("merged buckets = %+v, want %+v", h.Buckets, want)
	}
	if a.Help["lifeguard_test_ops_total"] != "ops" {
		t.Fatalf("help text not merged")
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("lifeguard bad") }},
		{"bad label key", func(r *Registry) { r.Counter("lifeguard_x_total", L("0bad", "v")) }},
		{"duplicate label key", func(r *Registry) { r.Counter("lifeguard_x_total", L("a", "1"), L("a", "2")) }},
		{"kind clash", func(r *Registry) { r.Counter("lifeguard_x"); r.Gauge("lifeguard_x") }},
		{"bucket clash", func(r *Registry) {
			r.Histogram("lifeguard_h", []float64{1, 2})
			r.Histogram("lifeguard_h", []float64{1, 3})
		}},
		{"unsorted buckets", func(r *Registry) { r.Histogram("lifeguard_h2", []float64{2, 1}) }},
		{"empty buckets", func(r *Registry) { r.Histogram("lifeguard_h3", nil) }},
		{"counter decrement", func(r *Registry) { r.Counter("lifeguard_c_total").Add(-1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f(New())
		})
	}
}

// equal compares snapshots via their deterministic JSON rendering.
func (s Snapshot) equal(other Snapshot) bool {
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		return false
	}
	if err := other.WriteJSON(&b); err != nil {
		return false
	}
	return bytes.Equal(a.Bytes(), b.Bytes())
}

func findMetric(t *testing.T, r *Registry, name string) Metric {
	t.Helper()
	return findMetricIn(t, r.Snapshot(), name)
}

func findMetricIn(t *testing.T, s Snapshot, name string) Metric {
	t.Helper()
	for _, m := range s.Metrics {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %s not in snapshot", name)
	return Metric{}
}
