package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Bucket is one cumulative histogram bucket in a snapshot. Only finite
// upper bounds appear (JSON cannot encode +Inf); the metric's Count field
// is the +Inf cumulative value.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Cumulative int64   `json:"cumulative"`
}

// Metric is one series frozen at snapshot time.
type Metric struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	// Value carries counters and gauges.
	Value int64 `json:"value"`
	// Sum, Count, and Buckets carry histograms.
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// key reconstructs the series sort key.
func (m Metric) key() string { return seriesKey(m.Name, m.Labels) }

// Snapshot is a registry frozen at a point in time, with series in sorted
// series-key order. Equal registries render byte-identical snapshots, so
// snapshots are directly diffable for the determinism tests.
type Snapshot struct {
	Metrics []Metric          `json:"metrics"`
	Help    map[string]string `json:"help,omitempty"`
}

// Snapshot freezes the registry. Safe to call concurrently with handle
// updates (each series is read atomically; the snapshot as a whole is a
// consistent ordering, not a consistent cut — fine for monitoring, and
// exact once the simulation has quiesced). A nil registry snapshots
// empty.
//
// On a child view (see Child) the snapshot covers only the view's
// partition: series carrying every scope label, with HELP text restricted
// to the families present. Equal partitions render byte-identical
// snapshots whether they came from a shared root or a dedicated one — the
// property the multi-tenant determinism tests diff against.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	scope := r.scope
	root := r.root()
	root.mu.Lock()
	keys := make([]string, 0, len(root.series))
	for k := range root.series {
		if hasLabels(root.series[k].labels, scope) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	snap := Snapshot{Metrics: make([]Metric, 0, len(keys))}
	if len(root.help) > 0 && len(scope) == 0 {
		snap.Help = make(map[string]string, len(root.help))
		for k, v := range root.help {
			snap.Help[k] = v
		}
	} else if len(root.help) > 0 {
		for _, k := range keys {
			name := root.series[k].name
			if h, ok := root.help[name]; ok {
				if snap.Help == nil {
					snap.Help = make(map[string]string)
				}
				snap.Help[name] = h
			}
		}
	}
	for _, k := range keys {
		s := root.series[k]
		m := Metric{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case kindCounter:
			m.Value = s.c.Value()
		case kindGauge:
			m.Value = s.g.Value()
		case kindHistogram:
			m.Sum, m.Count = s.h.Sum(), s.h.Count()
			var cum int64
			m.Buckets = make([]Bucket, len(s.h.uppers))
			for i, u := range s.h.uppers {
				cum += s.h.counts[i].Load()
				m.Buckets[i] = Bucket{UpperBound: u, Cumulative: cum}
			}
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	root.mu.Unlock()
	return snap
}

// hasLabels reports whether ls (sorted by key) contains every label of
// want (also sorted) with an equal value.
func hasLabels(ls, want []Label) bool {
	i := 0
	for _, w := range want {
		for i < len(ls) && ls[i].Key < w.Key {
			i++
		}
		if i >= len(ls) || ls[i] != w {
			return false
		}
		i++
	}
	return true
}

// WriteJSON renders the snapshot as indented JSON. encoding/json sorts
// map keys, and Metrics is already sorted, so the bytes are deterministic
// for a given registry state.
func (s Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
