package obs

import (
	"bytes"
	"testing"
)

// TestChildAvoidsTenantCollision is the collision guard the multi-tenant
// facade relies on: two tenants registering the same metric name through
// differently-scoped children get distinct series, where registering
// through the shared root would silently hand both the same counter.
func TestChildAvoidsTenantCollision(t *testing.T) {
	root := New()
	a := root.Child(L("tenant", "AS64512"))
	b := root.Child(L("tenant", "AS64513"))

	ca := a.Counter("lifeguard_monitor_ping_rounds_total")
	cb := b.Counter("lifeguard_monitor_ping_rounds_total")
	if ca == cb {
		t.Fatal("tenants share a counter despite distinct scopes")
	}
	ca.Add(3)
	cb.Add(5)
	if got := ca.Value(); got != 3 {
		t.Fatalf("tenant A counter = %d, want 3 (crosstalk?)", got)
	}
	if got := cb.Value(); got != 5 {
		t.Fatalf("tenant B counter = %d, want 5 (crosstalk?)", got)
	}

	// The shared-root collision the guard exists for: same name, no scope.
	shared1 := root.Counter("lifeguard_monitor_ping_rounds_total")
	shared2 := root.Counter("lifeguard_monitor_ping_rounds_total")
	if shared1 != shared2 {
		t.Fatal("unscoped registration should collide (same series)")
	}
	if shared1 == ca || shared1 == cb {
		t.Fatal("root series aliases a tenant series")
	}

	// Re-fetch through the same child returns the same handle.
	if a.Counter("lifeguard_monitor_ping_rounds_total") != ca {
		t.Fatal("re-registration through the same child must re-fetch")
	}
}

// TestChildSnapshotPartition: a child's snapshot covers exactly its scope,
// and equals the snapshot a dedicated root would have produced.
func TestChildSnapshotPartition(t *testing.T) {
	root := New()
	root.Describe("lifeguard_x_total", "things")
	root.Counter("lifeguard_unscoped_total").Add(7)
	a := root.Child(L("tenant", "AS1"))
	b := root.Child(L("tenant", "AS2"))
	a.Counter("lifeguard_x_total").Add(2)
	a.Histogram("lifeguard_d_seconds", []float64{1, 5}).Observe(3)
	b.Counter("lifeguard_x_total").Add(9)

	solo := New()
	solo.Describe("lifeguard_x_total", "things")
	sa := solo.Child(L("tenant", "AS1"))
	sa.Counter("lifeguard_x_total").Add(2)
	sa.Histogram("lifeguard_d_seconds", []float64{1, 5}).Observe(3)

	if !a.Snapshot().equal(sa.Snapshot()) {
		var got, want bytes.Buffer
		a.Snapshot().WriteJSON(&got)
		sa.Snapshot().WriteJSON(&want)
		t.Fatalf("partition snapshot differs from dedicated root:\ngot:\n%s\nwant:\n%s",
			got.String(), want.String())
	}
	for _, m := range a.Snapshot().Metrics {
		if m.Name == "lifeguard_unscoped_total" {
			t.Fatal("child snapshot leaked an unscoped series")
		}
	}
	if n := len(b.Snapshot().Metrics); n != 1 {
		t.Fatalf("tenant B partition has %d series, want 1", n)
	}
	// Root still sees everything.
	if n := len(root.Snapshot().Metrics); n != 4 {
		t.Fatalf("root snapshot has %d series, want 4", n)
	}
}

// TestChildPanics covers the guard rails: empty scope, duplicate scope
// keys (directly, via nesting, and via a registration-time label), and
// merging through a view.
func TestChildPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"empty scope", func(r *Registry) { r.Child() }},
		{"dup key in scope", func(r *Registry) { r.Child(L("t", "a"), L("t", "b")) }},
		{"dup key via nesting", func(r *Registry) { r.Child(L("t", "a")).Child(L("t", "b")) }},
		{"scope key reused at registration", func(r *Registry) {
			r.Child(L("t", "a")).Counter("lifeguard_x_total", L("t", "b"))
		}},
		{"merge into child", func(r *Registry) { r.Child(L("t", "a")).Merge(New()) }},
		{"merge from child", func(r *Registry) { r.Merge(New().Child(L("t", "a"))) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.f(New())
		})
	}
}

// TestChildNestingAndNil: nested scopes compose; nil stays disabled.
func TestChildNestingAndNil(t *testing.T) {
	root := New()
	c := root.Child(L("tenant", "AS1")).Child(L("role", "sentinel"))
	c.Counter("lifeguard_x_total").Inc()
	m := findMetric(t, c, "lifeguard_x_total")
	if len(m.Labels) != 2 || m.Labels[0] != L("role", "sentinel") || m.Labels[1] != L("tenant", "AS1") {
		t.Fatalf("composed scope labels wrong: %v", m.Labels)
	}

	var nilReg *Registry
	if nilReg.Child(L("t", "a")) != nil {
		t.Fatal("Child of nil registry must stay nil")
	}
	if nilReg.Child(L("t", "a")).Counter("lifeguard_x_total") != nil {
		t.Fatal("nil child must hand out nil handles")
	}
}
