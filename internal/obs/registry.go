// Package obs is the repo's observability subsystem: a metrics registry
// (counters, gauges, fixed-bucket histograms), a sim-time event journal,
// and deterministic export encoders (Prometheus text format and JSON).
//
// Design constraints, in priority order:
//
//  1. Determinism-neutral. Instrumentation must never perturb simulation
//     results: handles are nil-safe (a disabled registry costs one branch
//     per operation and allocates nothing), snapshots render in sorted
//     series-key order, and per-trial registries merge by addition in
//     trial-index order — the same mergeable-accumulator discipline as
//     internal/metrics — so the merged snapshot is byte-identical at
//     every parallelism level.
//  2. No package-global mutable state. Everything hangs off an explicit
//     *Registry; two rigs in one process never share a counter.
//  3. Stdlib only, and no wall-clock reads: the journal is stamped with
//     simclock virtual time supplied by the caller, and the registry
//     itself never touches package time beyond the time.Duration type.
//     (The HTTP exporter, which legitimately lives on the wall clock,
//     is quarantined in the obs/obshttp subpackage.)
//
// Naming convention: lifeguard_<subsystem>_<metric>, with Prometheus
// suffix rules (_total for counters, unit suffixes for histograms).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Disabled is the no-op registry: every handle obtained from it is nil,
// and nil handles make every operation a single branch. Passing Disabled
// (or any nil *Registry) is how instrumented code runs uninstrumented.
var Disabled *Registry

// Label is one key="value" dimension of a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the three metric types.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one registered time series.
type series struct {
	name   string
	labels []Label // sorted by key
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of named series. The zero value is not usable; use
// New. A nil *Registry is the disabled registry: registration returns nil
// handles and Snapshot returns an empty snapshot.
//
// Registration takes a mutex; the returned handles are lock-free atomics,
// safe to update from any goroutine and to snapshot concurrently (e.g.
// from the HTTP exporter while the simulation runs).
//
// A Registry obtained from Child is a *scoped view*: it shares the root's
// series storage but stamps a fixed label set onto every registration, and
// its Snapshot covers only the stamped partition. Views are how tenants
// sharing one process-wide registry avoid series collisions — see Child.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	help   map[string]string

	// parent is nil at a root registry; a child view delegates all series
	// storage to the root and only carries its scope.
	parent *Registry
	// scope is the label set a child view stamps on every series it
	// registers (sorted by key; empty at a root).
	scope []Label
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{series: make(map[string]*series), help: make(map[string]string)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// root resolves a view to the registry that owns the series storage.
func (r *Registry) root() *Registry {
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// scoped prepends the view's scope labels to a registration's own labels.
func (r *Registry) scoped(labels []Label) []Label {
	if len(r.scope) == 0 {
		return labels
	}
	out := make([]Label, 0, len(r.scope)+len(labels))
	out = append(out, r.scope...)
	out = append(out, labels...)
	return out
}

// Child returns a scoped view of the registry: every series registered
// through the view carries the given labels in addition to its own, and the
// view's Snapshot covers exactly that partition. Two tenants registering
// the same metric name through differently-scoped children therefore get
// distinct series instead of silently sharing (or panicking over) one —
// the collision guard the multi-tenant facade relies on. Registering a
// label whose key collides with a scope key panics, as does nesting
// children with a repeated key. Child of a nil registry is nil (still
// disabled); Child of a child composes scopes.
func (r *Registry) Child(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: Child needs at least one scope label")
	}
	return &Registry{parent: r.root(), scope: canonLabels(r.scoped(labels))}
}

// Describe attaches HELP text to a metric family. Safe on a nil registry.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	mustValidName(name)
	root := r.root()
	root.mu.Lock()
	root.help[name] = help
	root.mu.Unlock()
}

// Counter registers (or re-fetches) a monotonically increasing counter.
// Returns nil on a nil registry. Panics if the series exists with a
// different kind, or on an invalid name or label.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.root().getSeries(name, r.scoped(labels), kindCounter, nil).c
}

// Gauge registers (or re-fetches) a gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.root().getSeries(name, r.scoped(labels), kindGauge, nil).g
}

// Histogram registers (or re-fetches) a fixed-bucket histogram. Buckets
// are upper bounds, strictly increasing, finite; an implicit +Inf bucket
// catches overflow. Re-registration must use identical buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	for i, b := range buckets {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %s: bucket %v must be finite", name, b))
		}
		if i > 0 && buckets[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram %s: buckets not strictly increasing", name))
		}
	}
	return r.root().getSeries(name, r.scoped(labels), kindHistogram, buckets).h
}

// getSeries finds or creates the series under the registry lock.
func (r *Registry) getSeries(name string, labels []Label, k kind, buckets []float64) *series {
	mustValidName(name)
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("obs: %s already registered as %v, requested %v", key, s.kind, k))
		}
		if k == kindHistogram && !equalFloats(s.h.uppers, buckets) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", key))
		}
		return s
	}
	s := &series{name: name, labels: ls, kind: k}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(buckets)
	}
	r.series[key] = s
	return s
}

// Counter is a monotonically increasing count. All methods are nil-safe:
// on a nil counter they are single-branch no-ops.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; n must be non-negative (counters never go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observations land in the
// first bucket whose upper bound is >= the value (le semantics), or the
// implicit +Inf overflow bucket. Nil-safe like Counter.
type Histogram struct {
	uppers []float64      // finite upper bounds, strictly increasing
	counts []atomic.Int64 // len(uppers)+1; last is the +Inf bucket
	sum    atomicFloat64
	total  atomic.Int64
}

func newHistogram(uppers []float64) *Histogram {
	u := make([]float64, len(uppers))
	copy(u, uppers)
	return &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.uppers, v)].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// Count reads the total number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum reads the sum of all observed values; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// atomicFloat64 is a CAS-loop float accumulator over uint64 bits.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat64) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Merge folds src into r by addition: counters and histogram buckets add,
// gauges add (per-trial gauges are deltas from zero, so addition composes
// sizes the same way internal/metrics accumulators do), HELP text fills
// gaps. Missing series are created. Within one call, src's series are
// folded in sorted-key order, so a fixed sequence of Merge calls — e.g.
// per-trial registries in trial-index order — produces a bit-identical
// registry regardless of how the trials were scheduled.
//
// Merge is a no-op when either registry is nil. It panics if a series
// exists in both with different kinds or histogram buckets, and on a child
// view on either side: a scoped merge would have to rewrite labels, and no
// caller needs it — merge roots, partition afterwards.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	if r.parent != nil || src.parent != nil {
		panic("obs: Merge on a child registry view; merge the roots instead")
	}
	type seriesVal struct {
		s       *series
		ival    int64
		bcounts []int64
		sum     float64
		total   int64
	}

	src.mu.Lock()
	keys := make([]string, 0, len(src.series))
	for k := range src.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]seriesVal, 0, len(keys))
	for _, k := range keys {
		s := src.series[k]
		v := seriesVal{s: s}
		switch s.kind {
		case kindCounter:
			v.ival = s.c.Value()
		case kindGauge:
			v.ival = s.g.Value()
		case kindHistogram:
			v.bcounts = make([]int64, len(s.h.counts))
			for i := range s.h.counts {
				v.bcounts[i] = s.h.counts[i].Load()
			}
			v.sum, v.total = s.h.Sum(), s.h.Count()
		}
		vals = append(vals, v)
	}
	helps := make(map[string]string, len(src.help))
	for k, v := range src.help {
		helps[k] = v
	}
	src.mu.Unlock()

	for name, help := range helps {
		r.mu.Lock()
		if _, ok := r.help[name]; !ok {
			r.help[name] = help
		}
		r.mu.Unlock()
	}
	for _, v := range vals {
		s := v.s
		var buckets []float64
		if s.kind == kindHistogram {
			buckets = s.h.uppers
		}
		dst := r.getSeries(s.name, s.labels, s.kind, buckets)
		switch s.kind {
		case kindCounter:
			dst.c.Add(v.ival)
		case kindGauge:
			dst.g.Add(v.ival)
		case kindHistogram:
			for i, n := range v.bcounts {
				dst.h.counts[i].Add(n)
			}
			dst.h.sum.add(v.sum)
			dst.h.total.Add(v.total)
		}
	}
}

// canonLabels copies and sorts labels by key, validating syntax.
func canonLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		mustValidLabelKey(l.Key)
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label key %q", l.Key))
		}
	}
	return ls
}

// seriesKey renders the canonical sort/identity key for a series.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus label-value escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func mustValidLabelKey(key string) {
	if !validLabelKey(key) {
		panic(fmt.Sprintf("obs: invalid label key %q", key))
	}
}

// validMetricName matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelKey matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
