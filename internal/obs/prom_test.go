package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := New()
	r.Describe("lifeguard_bgp_updates_total", "BGP updates\nprocessed")
	r.Counter("lifeguard_bgp_updates_total", L("dir", "in")).Add(3)
	r.Counter("lifeguard_bgp_updates_total", L("dir", "out")).Add(5)
	r.Gauge("lifeguard_bgp_locrib_routes").Set(42)
	h := r.Histogram("lifeguard_isolation_seconds", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	var b bytes.Buffer
	if err := testRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE lifeguard_bgp_locrib_routes gauge`,
		`lifeguard_bgp_locrib_routes 42`,
		`# HELP lifeguard_bgp_updates_total BGP updates\nprocessed`,
		`# TYPE lifeguard_bgp_updates_total counter`,
		`lifeguard_bgp_updates_total{dir="in"} 3`,
		`lifeguard_bgp_updates_total{dir="out"} 5`,
		`# TYPE lifeguard_isolation_seconds histogram`,
		`lifeguard_isolation_seconds_bucket{le="0.5"} 1`,
		`lifeguard_isolation_seconds_bucket{le="1"} 2`,
		`lifeguard_isolation_seconds_bucket{le="+Inf"} 3`,
		`lifeguard_isolation_seconds_sum 4`,
		`lifeguard_isolation_seconds_count 3`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Fatalf("prometheus text mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("lifeguard_x_total", L("v", "a\"b\\c\nd")).Inc()
	var b bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE lifeguard_x_total counter\n" +
		`lifeguard_x_total{v="a\"b\\c\nd"} 1` + "\n"
	if b.String() != want {
		t.Fatalf("escaping mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	snap := testRegistry().Snapshot()
	var a, b bytes.Buffer
	if err := snap.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSON rendering not deterministic")
	}
	var back Snapshot
	if err := json.Unmarshal(a.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(back.Metrics) != len(snap.Metrics) {
		t.Fatalf("round trip lost metrics: %d != %d", len(back.Metrics), len(snap.Metrics))
	}
	if back.Help["lifeguard_bgp_updates_total"] == "" {
		t.Fatalf("round trip lost help text")
	}
}
