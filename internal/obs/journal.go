package obs

import (
	"fmt"
	"sync"
	"time"
)

// Field is one structured key/value of a journal event. Values are
// pre-rendered strings so events are cheap to drain and trivially
// JSON-encodable; F does the rendering.
type Field struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// F renders a journal field. Call sites on hot paths should guard with
// Journal.Enabled() so the fmt.Sprint cost is only paid when recording.
func F(key string, value any) Field { return Field{Key: key, Value: fmt.Sprint(value)} }

// Event is one journal entry, stamped with simclock virtual time. The
// journal never reads the wall clock: VTime is whatever the recording
// subsystem's scheduler said, so a replayed simulation journals
// identically.
type Event struct {
	VTime     time.Duration `json:"vtime"`
	Subsystem string        `json:"subsystem"`
	Kind      string        `json:"kind"`
	Fields    []Field       `json:"fields,omitempty"`
}

// Journal is a bounded ring buffer of structured events. When full, the
// oldest event is overwritten and the dropped count incremented, so a
// long-running daemon holds the most recent window at a fixed memory
// cost. A nil *Journal is the disabled journal: Record is a one-branch
// no-op and Drain returns nothing.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	dropped int64
}

// DefaultJournalCapacity bounds journals created with capacity <= 0.
const DefaultJournalCapacity = 1024

// NewJournal returns a journal holding at most capacity events
// (DefaultJournalCapacity if capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Enabled reports whether Record stores anything — the guard call sites
// use before rendering fields.
func (j *Journal) Enabled() bool { return j != nil }

// Record appends an event, evicting the oldest when full.
func (j *Journal) Record(vtime time.Duration, subsystem, kind string, fields ...Field) {
	if j == nil {
		return
	}
	e := Event{VTime: vtime, Subsystem: subsystem, Kind: kind, Fields: fields}
	j.mu.Lock()
	if j.n == len(j.buf) {
		j.buf[j.start] = e
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = e
		j.n++
	}
	j.mu.Unlock()
}

// Drain returns the buffered events oldest-first and empties the journal.
func (j *Journal) Drain() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := j.snapshotLocked()
	j.start, j.n = 0, 0
	j.mu.Unlock()
	return out
}

// Events returns the buffered events oldest-first without clearing.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := j.snapshotLocked()
	j.mu.Unlock()
	return out
}

func (j *Journal) snapshotLocked() []Event {
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	return out
}

// Dropped reports how many events were evicted unread.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Len reports the number of buffered events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Cap reports the ring capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}
