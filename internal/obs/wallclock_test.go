package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoWallClockInCore asserts the obs core — registry, journal, and the
// encoders, everything in this directory — contains zero wall-clock call
// sites. The package may name the time.Duration type (journal vtimes),
// but any time.Now/Sleep/After/… here would let instrumentation perturb
// what it observes. Wall-clock reads are quarantined in the obshttp
// subpackage, which carries its own simclockcheck allowlist entry; this
// test guards the boundary from the inside, independent of lglint.
func TestNoWallClockInCore(t *testing.T) {
	forbidden := map[string]bool{
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	}
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Go sources found; test must run from the package directory")
	}
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && forbidden[sel.Sel.Name] {
				t.Errorf("%s: wall-clock call time.%s in obs core", fset.Position(sel.Pos()), sel.Sel.Name)
			}
			return true
		})
	}
}
