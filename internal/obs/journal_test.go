package obs

import (
	"testing"
	"time"
)

func TestJournalRecordsInOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Record(time.Duration(i)*time.Second, "bgp", "update", F("n", i))
	}
	if j.Len() != 5 || j.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", j.Len(), j.Dropped())
	}
	evs := j.Drain()
	if len(evs) != 5 {
		t.Fatalf("drained %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.VTime != time.Duration(i)*time.Second || e.Subsystem != "bgp" || e.Kind != "update" {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
		if len(e.Fields) != 1 || e.Fields[0] != (Field{Key: "n", Value: e.Fields[0].Value}) {
			t.Fatalf("event %d fields mangled: %+v", i, e.Fields)
		}
	}
	if j.Len() != 0 {
		t.Fatalf("journal not empty after Drain")
	}
}

func TestJournalRingEvictsOldest(t *testing.T) {
	j := NewJournal(3)
	for i := 0; i < 7; i++ {
		j.Record(time.Duration(i), "sys", "tick")
	}
	if j.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", j.Dropped())
	}
	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("kept %d events, want 3", len(evs))
	}
	for i, want := range []time.Duration{4, 5, 6} {
		if evs[i].VTime != want {
			t.Fatalf("ring kept wrong window: %+v", evs)
		}
	}
	// Events must not clear; Drain after it still sees the window.
	if got := len(j.Drain()); got != 3 {
		t.Fatalf("Drain after Events returned %d events, want 3", got)
	}
}

func TestJournalNilIsNoOp(t *testing.T) {
	var j *Journal
	j.Record(time.Second, "sys", "tick", F("a", 1))
	if j.Enabled() || j.Len() != 0 || j.Cap() != 0 || j.Dropped() != 0 {
		t.Fatalf("nil journal not inert")
	}
	if j.Drain() != nil || j.Events() != nil {
		t.Fatalf("nil journal returned events")
	}
}

func TestJournalDefaultCapacity(t *testing.T) {
	if got := NewJournal(0).Cap(); got != DefaultJournalCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultJournalCapacity)
	}
}
