package obshttp_test

import (
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/obs"
	"lifeguard/internal/obs/obshttp"
)

// TestSystemMetricsEndpoint is the whole-pipeline acceptance check: run
// the Fig. 2 repair lifecycle on an instrumented network, serve the
// registry over /metrics, and validate the exposition with the real
// parser — every major subsystem must have reported counters, not just
// registered them.
func TestSystemMetricsEndpoint(t *testing.T) {
	const (
		asO lifeguard.ASN = 10
		asB lifeguard.ASN = 20
		asA lifeguard.ASN = 30
		asC lifeguard.ASN = 40
		asD lifeguard.ASN = 50
		asE lifeguard.ASN = 60
	)
	b := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{asO, asB, asA, asC, asD, asE} {
		b.AddAS(asn, "")
		b.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}, {asB, asC}, {asC, asD}, {asA, asE}, {asD, asE}} {
		b.Provider(r[0], r[1])
		b.ConnectAS(r[0], r[1])
	}
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	journal := obs.NewJournal(256)
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{
		Seed:    11,
		Obs:     reg,
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := lifeguard.NewSystem(n, lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
		Targets: []netip.Addr{n.RouterAddr(n.Hub(asE))},
	})
	sys.Start()
	n.Clk.RunFor(3 * time.Minute)
	fid := n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
	n.Clk.RunFor(20 * time.Minute)
	n.HealFailure(fid)
	n.Clk.RunFor(10 * time.Minute)
	sys.Stop()

	srv := httptest.NewServer(obshttp.NewMux(reg, journal))
	defer srv.Close()
	body, resp := get(t, srv.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	fams, err := parseProm(body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}

	// One live counter per subsystem the repair pipeline flows through.
	for _, name := range []string{
		"lifeguard_bgp_updates_sent_total",
		"lifeguard_dataplane_packets_forwarded_total",
		"lifeguard_probe_probes_total",
		"lifeguard_monitor_ping_rounds_total",
		"lifeguard_monitor_outages_detected_total",
		"lifeguard_isolation_runs_total",
		"lifeguard_remedy_poisons_total",
		"lifeguard_remedy_unpoisons_total",
	} {
		f, ok := fams[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.typ != "counter" {
			t.Errorf("%s: type %q, want counter", name, f.typ)
		}
		var total float64
		for _, s := range f.samples {
			total += s.value
		}
		if total <= 0 {
			t.Errorf("%s: total %v, want > 0 after a full repair lifecycle", name, total)
		}
	}

	if journal.Len() == 0 {
		t.Error("event journal is empty after a full repair lifecycle")
	}
}
