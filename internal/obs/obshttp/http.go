// Package obshttp is the wall-clock edge of the observability subsystem:
// an HTTP mux exposing a Registry and Journal to operators. It is the one
// obs component allowed to touch real time (scrape timestamps, uptime) —
// it runs on the serving goroutine, never inside the simulation, and
// nothing in the simulation reads from it. The package is allowlisted in
// lglint's simclockcheck for exactly that reason; the obs core it exports
// stays subject to the check (and to internal/obs's own wall-clock test).
//
// Endpoints:
//
//	/metrics     Prometheus text exposition format 0.0.4
//	/healthz     liveness JSON (status, wall-clock uptime)
//	/debug/vars  full JSON snapshot of the registry plus the journal tail
//	/debug/pprof the standard net/http/pprof profiles
package obshttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"lifeguard/internal/obs"
)

// NewMux builds the observability mux over a registry and an optional
// journal. Both may be nil (endpoints then serve empty documents), so a
// daemon can expose the surface unconditionally and wire obs on or off
// with one flag.
func NewMux(reg *obs.Registry, j *obs.Journal) *http.ServeMux {
	start := time.Now() // wall clock: operator-facing uptime, outside the simulation
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			// Headers are gone; nothing to do but note it mid-stream.
			fmt.Fprintf(w, "# error: %v\n", err)
		}
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(start).Seconds(),
		})
	})

	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := map[string]any{"snapshot": reg.Snapshot()}
		if j.Enabled() {
			doc["journal"] = map[string]any{
				"len":     j.Len(),
				"cap":     j.Cap(),
				"dropped": j.Dropped(),
				"events":  j.Events(),
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// Serve runs the mux on addr until the listener fails. It is a
// convenience for daemons: call it on its own goroutine and forget it —
// the process's lifetime is managed elsewhere (signals), and the server
// dies with the process.
func Serve(addr string, mux *http.ServeMux) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}
