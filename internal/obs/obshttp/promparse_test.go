package obshttp_test

// A small validating parser for the Prometheus text exposition format
// (version 0.0.4), used by the endpoint tests so /metrics is checked
// structurally — comment ordering, label syntax, histogram bucket
// monotonicity — rather than string-matched.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promFamily struct {
	name    string
	typ     string
	help    string
	samples []promSample
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// parseProm validates text and returns the families keyed by name.
func parseProm(text string) (map[string]*promFamily, error) {
	fams := make(map[string]*promFamily)
	get := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name}
			fams[name] = f
		}
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if !validPromName(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
			}
			f := get(name)
			if len(f.samples) > 0 {
				return nil, fmt.Errorf("line %d: %s for %s after its samples", lineNo, fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				if len(fields) == 4 {
					f.help = fields[3]
				}
			case "TYPE":
				if f.typ != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(fields) != 4 || !promTypes[fields[3]] {
					return nil, fmt.Errorf("line %d: bad TYPE line %q", lineNo, line)
				}
				f.typ = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(s.name, fams)
		f, ok := fams[fam]
		if !ok || f.typ == "" {
			return nil, fmt.Errorf("line %d: sample %s before any TYPE declaration", lineNo, s.name)
		}
		f.samples = append(f.samples, s)
	}
	for _, f := range fams {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// familyOf maps a sample name to its family: histogram samples carry
// _bucket/_sum/_count suffixes.
func familyOf(sample string, fams map[string]*promFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample {
			if f, ok := fams[base]; ok && f.typ == "histogram" {
				return base
			}
		}
	}
	return sample
}

func validateFamily(f *promFamily) error {
	if f.typ == "" {
		return fmt.Errorf("family %s: no TYPE", f.name)
	}
	if f.typ != "histogram" {
		for _, s := range f.samples {
			if s.name != f.name {
				return fmt.Errorf("family %s: stray sample %s", f.name, s.name)
			}
			if f.typ == "counter" && s.value < 0 {
				return fmt.Errorf("family %s: negative counter %v", f.name, s.value)
			}
		}
		return nil
	}
	// Histogram: group by the non-le labels, then check each series.
	type hist struct {
		les    []float64
		cums   []float64
		sum    *float64
		count  *float64
	}
	groups := make(map[string]*hist)
	for _, s := range f.samples {
		rest := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k != "le" {
				rest = append(rest, k+"="+v)
			}
		}
		sort.Strings(rest)
		g, ok := groups[strings.Join(rest, ",")]
		if !ok {
			g = &hist{}
			groups[strings.Join(rest, ",")] = g
		}
		switch s.name {
		case f.name + "_bucket":
			le, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("family %s: bucket without le", f.name)
			}
			lv, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("family %s: bad le %q", f.name, le)
			}
			g.les = append(g.les, lv)
			g.cums = append(g.cums, s.value)
		case f.name + "_sum":
			v := s.value
			g.sum = &v
		case f.name + "_count":
			v := s.value
			g.count = &v
		default:
			return fmt.Errorf("family %s: stray sample %s", f.name, s.name)
		}
	}
	for key, g := range groups {
		if len(g.les) == 0 || g.count == nil || g.sum == nil {
			return fmt.Errorf("family %s{%s}: incomplete histogram", f.name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("family %s{%s}: le not increasing", f.name, key)
			}
			if g.cums[i] < g.cums[i-1] {
				return fmt.Errorf("family %s{%s}: buckets not cumulative", f.name, key)
			}
		}
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("family %s{%s}: missing +Inf bucket", f.name, key)
		}
		if g.cums[len(g.cums)-1] != *g.count {
			return fmt.Errorf("family %s{%s}: +Inf bucket %v != count %v", f.name, key, g.cums[len(g.cums)-1], *g.count)
		}
	}
	return nil
}

// parsePromSample decodes one "name{labels} value" line.
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	s.name = line[:i]
	if !validPromName(s.name) {
		return s, fmt.Errorf("bad sample name in %q", line)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			j := i
			for j < len(line) && isLabelChar(line[j], j == i) {
				j++
			}
			key := line[i:j]
			if key == "" || j+1 >= len(line) || line[j] != '=' || line[j+1] != '"' {
				return s, fmt.Errorf("bad label syntax in %q", line)
			}
			j += 2
			var val strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape in %q", line)
					}
					j += 2
					continue
				}
				val.WriteByte(line[j])
				j++
			}
			if j >= len(line) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			if _, dup := s.labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q in %q", key, line)
			}
			s.labels[key] = val.String()
			j++ // closing quote
			if j < len(line) && line[j] == ',' {
				i = j + 1
				continue
			}
			if j < len(line) && line[j] == '}' {
				i = j + 1
				break
			}
			return s, fmt.Errorf("bad label list in %q", line)
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	v, err := parsePromValue(line[i+1:])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.value = v
	return s, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func isNameChar(c byte, first bool) bool {
	alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}

func isLabelChar(c byte, first bool) bool {
	alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
	return alpha || (!first && c >= '0' && c <= '9')
}
