package obshttp_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lifeguard/internal/obs"
	"lifeguard/internal/obs/obshttp"
)

func newTestServer(t *testing.T) (*httptest.Server, *obs.Registry, *obs.Journal) {
	t.Helper()
	reg := obs.New()
	j := obs.NewJournal(16)
	srv := httptest.NewServer(obshttp.NewMux(reg, j))
	t.Cleanup(srv.Close)
	return srv, reg, j
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", url, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestMetricsEndpointParses(t *testing.T) {
	srv, reg, _ := newTestServer(t)
	reg.Describe("lifeguard_bgp_updates_sent_total", "updates sent")
	reg.Counter("lifeguard_bgp_updates_sent_total").Add(12)
	reg.Gauge("lifeguard_bgp_locrib_routes").Set(7)
	h := reg.Histogram("lifeguard_isolation_duration_seconds", []float64{60, 300})
	h.Observe(45)
	h.Observe(480)

	body, resp := get(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PrometheusContentType)
	}
	fams, err := parseProm(body)
	if err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, body)
	}
	if f := fams["lifeguard_bgp_updates_sent_total"]; f == nil || f.typ != "counter" ||
		len(f.samples) != 1 || f.samples[0].value != 12 || f.help != "updates sent" {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f := fams["lifeguard_isolation_duration_seconds"]; f == nil || f.typ != "histogram" {
		t.Fatalf("histogram family wrong: %+v", f)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body, resp := get(t, srv.URL+"/healthz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var doc struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if doc.Status != "ok" || doc.UptimeSeconds < 0 || math.IsNaN(doc.UptimeSeconds) {
		t.Fatalf("healthz doc wrong: %+v", doc)
	}
}

func TestDebugVarsIncludesJournal(t *testing.T) {
	srv, reg, j := newTestServer(t)
	reg.Counter("lifeguard_probe_probes_total").Inc()
	j.Record(90*time.Second, "monitor", "outage", obs.F("vp", 3))

	body, _ := get(t, srv.URL+"/debug/vars")
	var doc struct {
		Snapshot obs.Snapshot `json:"snapshot"`
		Journal  struct {
			Len     int         `json:"len"`
			Cap     int         `json:"cap"`
			Dropped int64       `json:"dropped"`
			Events  []obs.Event `json:"events"`
		} `json:"journal"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if len(doc.Snapshot.Metrics) != 1 || doc.Snapshot.Metrics[0].Name != "lifeguard_probe_probes_total" {
		t.Fatalf("snapshot missing metric: %+v", doc.Snapshot)
	}
	if doc.Journal.Len != 1 || doc.Journal.Cap != 16 || len(doc.Journal.Events) != 1 {
		t.Fatalf("journal section wrong: %+v", doc.Journal)
	}
	ev := doc.Journal.Events[0]
	if ev.Subsystem != "monitor" || ev.Kind != "outage" || ev.VTime != 90*time.Second {
		t.Fatalf("journal event mangled: %+v", ev)
	}
}

func TestPprofIndexServes(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body, _ := get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", body)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"lifeguard_x_total 1\n",                             // sample with no TYPE
		"# TYPE lifeguard_x_total counter\nlifeguard_x_total{le=} 1\n", // label syntax
		"# TYPE lifeguard_x_total wibble\n",                 // unknown type
		"# TYPE lifeguard_h histogram\nlifeguard_h_bucket{le=\"1\"} 2\nlifeguard_h_sum 1\nlifeguard_h_count 2\n", // no +Inf
	}
	for _, text := range bad {
		if _, err := parseProm(text); err == nil {
			t.Errorf("parser accepted malformed exposition:\n%s", text)
		}
	}
}
