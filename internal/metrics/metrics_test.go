package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercentileSmall(t *testing.T) {
	var s Sample
	for _, v := range []float64{4, 1, 3, 2} {
		s.Add(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Percentile(50)) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestMeanSumMinMax(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(6)
	s.Add(4)
	if !almost(s.Mean(), 4) || !almost(s.Sum(), 12) {
		t.Fatalf("mean=%v sum=%v", s.Mean(), s.Sum())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(90 * time.Second)
	if !almost(s.Mean(), 90) {
		t.Fatalf("mean = %v, want 90", s.Mean())
	}
}

func TestFractionAtMost(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if got := s.FractionAtMost(3); !almost(got, 0.6) {
		t.Fatalf("FractionAtMost(3) = %v, want 0.6", got)
	}
	if got := s.FractionAtMost(0.5); !almost(got, 0) {
		t.Fatalf("FractionAtMost(0.5) = %v, want 0", got)
	}
	if got := s.FractionAtMost(10); !almost(got, 1) {
		t.Fatalf("FractionAtMost(10) = %v, want 1", got)
	}
}

func TestWeightedCDF(t *testing.T) {
	// Observations 1 and 9: value 1 contributes 10% of total weight.
	var s Sample
	s.Add(1)
	s.Add(9)
	pts := s.WeightedCDF([]float64{1, 9})
	if !almost(pts[0].Frac, 0.1) || !almost(pts[1].Frac, 1) {
		t.Fatalf("WeightedCDF = %+v", pts)
	}
}

func TestFig1Shape(t *testing.T) {
	// A heavy-tailed sample where most events are short but long events
	// dominate total weight — the Fig. 1 phenomenon must be expressible.
	var s Sample
	for i := 0; i < 95; i++ {
		s.Add(2) // 95 short outages, 2 min each
	}
	for i := 0; i < 5; i++ {
		s.Add(200) // 5 long outages, 200 min each
	}
	if got := s.FractionAtMost(10); got < 0.9 {
		t.Fatalf("fraction of events <= 10 = %v, want >= 0.9", got)
	}
	w := s.WeightedCDF([]float64{10})[0].Frac
	if w > 0.25 {
		t.Fatalf("weight of short events = %v, want small", w)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-6 {
			t.Fatalf("LogSpace = %v", xs)
		}
	}
	if got := LogSpace(0, 10, 5); len(got) != 2 {
		t.Fatalf("degenerate LogSpace = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Observe(true)
	c.Observe(true)
	c.Observe(false)
	if c.Hits != 2 || c.Total != 3 {
		t.Fatalf("counter = %+v", c)
	}
	if !almost(c.Fraction(), 2.0/3.0) {
		t.Fatalf("fraction = %v", c.Fraction())
	}
	if !strings.Contains(c.String(), "2/3") {
		t.Fatalf("String = %q", c.String())
	}
	var empty Counter
	if !math.IsNaN(empty.Fraction()) {
		t.Fatal("empty counter fraction should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"name", "pct"}}
	tab.AddRow("alpha", 12.345)
	tab.AddRow("b", 1)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "12.35") {
		t.Fatalf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionAtMost is a CDF — monotone, 0 below min, 1 at max.
func TestCDFProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(rng.ExpFloat64() * 10)
	}
	prev := 0.0
	for _, x := range LogSpace(0.01, 1000, 50) {
		f := s.FractionAtMost(x)
		if f < prev {
			t.Fatalf("CDF decreased at x=%v: %v < %v", x, f, prev)
		}
		prev = f
	}
	if !almost(s.FractionAtMost(s.Max()), 1) {
		t.Fatal("CDF at max != 1")
	}
}
