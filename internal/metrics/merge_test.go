package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Property: splitting observations into two samples and merging them is
// indistinguishable — bit for bit — from adding them all to one sample.
// This is the equivalence the parallel experiment runner's ordered
// reduction rests on.
func TestSampleMergeEqualsConcatenationProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)

		var a, b, whole Sample
		for _, v := range xs {
			a.Add(v)
			whole.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			whole.Add(v)
		}
		a.Merge(&b)

		if a.N() != whole.N() {
			return false
		}
		if a.N() == 0 {
			return math.IsNaN(a.Mean()) && math.IsNaN(a.Percentile(50))
		}
		// Mean must be bit-identical: the merged sample holds the values
		// in the same order, so the float summation order matches.
		if a.Mean() != whole.Mean() || a.Sum() != whole.Sum() {
			return false
		}
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			if a.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMergePreSortedStillExact(t *testing.T) {
	// Sorting a (via a percentile query) before merging reorders its
	// internal values; rank statistics must still match exactly.
	var a, b, whole Sample
	for _, v := range []float64{9, 1, 5} {
		a.Add(v)
		whole.Add(v)
	}
	_ = a.Percentile(50) // forces the sort
	for _, v := range []float64{4, 8} {
		b.Add(v)
		whole.Add(v)
	}
	a.Merge(&b)
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("Percentile(%v) = %v, want %v", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

func TestSampleMergeNilAndEmpty(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Merge(nil)
	s.Merge(&Sample{})
	if s.N() != 1 || s.Mean() != 1 {
		t.Fatalf("merge of nil/empty corrupted sample: n=%d", s.N())
	}
}

func TestCounterMerge(t *testing.T) {
	a := Counter{Hits: 2, Total: 5}
	a.Merge(Counter{Hits: 1, Total: 3})
	if a.Hits != 3 || a.Total != 8 {
		t.Fatalf("merged counter = %+v", a)
	}
}

func TestTableMerge(t *testing.T) {
	a := &Table{Title: "whole", Header: []string{"x", "y"}}
	a.AddRow("r1", 1.0)
	b := &Table{Header: []string{"x", "y"}}
	b.AddRow("r2", 2.0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", a.NumRows())
	}
	out := a.String()
	if i1, i2 := strings.Index(out, "r1"), strings.Index(out, "r2"); i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("merged rows missing or out of order:\n%s", out)
	}

	c := &Table{Header: []string{"different"}}
	if err := a.Merge(c); err == nil {
		t.Fatal("header mismatch must be rejected")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}
