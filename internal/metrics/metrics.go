// Package metrics provides the small statistical toolkit the experiment
// harness uses: empirical CDFs, percentiles, duration-weighted availability
// accounting, and fixed-width text tables that mirror the rows the paper
// reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is an ordered collection of float64 observations.
type Sample struct {
	sorted bool
	vals   []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDuration appends a duration observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Merge appends all of o's observations to s, leaving o unchanged. This is
// the accumulator half of the parallel trial runner's contract: a sample
// assembled by merging fresh per-trial samples in trial order holds its
// observations in exactly the order a single sequential run would have
// added them, so every statistic — including order-sensitive float sums
// like Mean — is bit-identical to the concatenated-sample result. (If s or
// o has already been sorted by a percentile query, the multiset is still
// identical, so rank statistics remain exact.)
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.vals) == 0 {
		return
	}
	s.vals = append(s.vals, o.vals...)
	s.sorted = false
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns NaN for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 {
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum
}

// Min returns the smallest observation, or NaN for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[0]
}

// Max returns the largest observation, or NaN for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// FractionAtMost reports the fraction of observations <= x.
func (s *Sample) FractionAtMost(x float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.sort()
	// First index with value > x.
	i := sort.SearchFloat64s(s.vals, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(s.vals))
}

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the empirical CDF evaluated at the given x values.
func (s *Sample) CDF(xs []float64) []CDFPoint {
	pts := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, CDFPoint{X: x, Frac: s.FractionAtMost(x)})
	}
	return pts
}

// WeightedCDF returns, for each x, the fraction of total weight contributed
// by observations <= x, weighting each observation by itself. The paper uses
// this for "fraction of total unreachability" in Fig. 1: an outage's weight
// is its duration.
func (s *Sample) WeightedCDF(xs []float64) []CDFPoint {
	s.sort()
	total := s.Sum()
	pts := make([]CDFPoint, 0, len(xs))
	for _, x := range xs {
		w := 0.0
		for _, v := range s.vals {
			if v > x {
				break
			}
			w += v
		}
		frac := math.NaN()
		if total > 0 {
			frac = w / total
		}
		pts = append(pts, CDFPoint{X: x, Frac: frac})
	}
	return pts
}

// LogSpace returns n points logarithmically spaced in [lo, hi].
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo, hi}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// Counter tallies named boolean outcomes, e.g. "found alternate path".
type Counter struct {
	Hits  int
	Total int
}

// Observe records one outcome.
func (c *Counter) Observe(hit bool) {
	c.Total++
	if hit {
		c.Hits++
	}
}

// Merge folds o's tallies into c; observation order never mattered for a
// counter, so merged and sequential accounting agree exactly.
func (c *Counter) Merge(o Counter) {
	c.Hits += o.Hits
	c.Total += o.Total
}

// Fraction reports Hits/Total, or NaN when nothing was observed.
func (c *Counter) Fraction() float64 {
	if c.Total == 0 {
		return math.NaN()
	}
	return float64(c.Hits) / float64(c.Total)
}

// Percent reports the fraction as a percentage.
func (c *Counter) Percent() float64 { return c.Fraction() * 100 }

// String formats the counter as "hits/total (pct%)".
func (c *Counter) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", c.Hits, c.Total, c.Percent())
}

// Table accumulates rows of an experiment report and renders them with
// aligned columns, one row per line, suitable for diffing against the
// numbers the paper publishes.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Merge appends o's rows, in order, after t's. Both tables must agree on
// the header (the shape contract of a sharded experiment whose trials each
// render a slice of one table); a mismatch is an error so a misassembled
// reduction fails loudly instead of rendering misaligned columns.
func (t *Table) Merge(o *Table) error {
	if o == nil {
		return nil
	}
	if len(t.Header) != len(o.Header) {
		return fmt.Errorf("metrics: merging tables with different headers: %v vs %v", t.Header, o.Header)
	}
	for i := range t.Header {
		if t.Header[i] != o.Header[i] {
			return fmt.Errorf("metrics: merging tables with different headers: %v vs %v", t.Header, o.Header)
		}
	}
	t.rows = append(t.rows, o.rows...)
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, 0)
	all := make([][]string, 0, len(t.rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.rows...)
	for _, row := range all {
		for i, cell := range row {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range all {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 && len(t.Header) > 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
