package lifeguard

import (
	"fmt"

	"lifeguard/internal/obs"
	"lifeguard/internal/topo"
	"lifeguard/internal/traffic"
)

// Re-exported traffic-subsystem types; see internal/traffic for the model.
type (
	// TrafficConfig sizes and seeds a session's flow population.
	TrafficConfig = traffic.Config
	// TrafficDest is one monitored destination in the population's mix.
	TrafficDest = traffic.Dest
	// TrafficGenerator models user flows and accounts user-seconds lost.
	TrafficGenerator = traffic.Generator
	// TrafficEpochReport is one epoch's served/lost accounting.
	TrafficEpochReport = traffic.EpochReport
	// TrafficSummary totals an epoch series.
	TrafficSummary = traffic.Summary
)

// Traffic-report helpers re-exported from internal/traffic.
var (
	// MergeTrafficEpochs folds per-shard epoch series back into the
	// unsharded series (byte-identical at any shard count).
	MergeTrafficEpochs = traffic.MergeEpochs
	// SummarizeTraffic totals an epoch series.
	SummarizeTraffic = traffic.Summarize
)

// AttachTraffic wires a flow-population generator to the session's rig and
// tenant: packets forward on the shared data plane, metrics land in the
// session's obs partition, epoch events in the rig journal tagged with the
// tenant. Zero-value config fields default from the session: Vantages to
// the ASes owning the monitored targets (the users sit where the monitor
// watches), Dests to the origin's production address (the traffic
// poisoning repairs), and Flows to 100k. The generator is returned and
// kept on s.Traffic; drive it by alternating Clk.RunFor(gen.Epoch()) with
// gen.RunEpoch().
func (s *Session) AttachTraffic(cfg TrafficConfig) (*TrafficGenerator, error) {
	if len(cfg.Vantages) == 0 {
		for _, t := range s.cfg.Targets {
			as, ok := topo.OwnerOf(t)
			if !ok {
				return nil, fmt.Errorf("lifeguard: monitored target %v has no owning AS to default a vantage from", t)
			}
			cfg.Vantages = append(cfg.Vantages, as)
		}
	}
	if len(cfg.Dests) == 0 {
		cfg.Dests = []TrafficDest{{Addr: ProductionAddr(s.cfg.Origin)}}
	}
	if cfg.Flows == 0 {
		cfg.Flows = 100_000
	}
	gen, err := traffic.New(traffic.Deps{
		Top:     s.Net.Top,
		Clk:     s.Net.Clk,
		Plane:   s.Net.Plane,
		Obs:     s.Obs,
		Journal: s.Net.Journal,
	}, cfg)
	if err != nil {
		return nil, err
	}
	s.Traffic = gen
	if j := s.Net.Journal; j.Enabled() {
		fields := []obs.Field{
			obs.F("flows", gen.Flows()),
			obs.F("vantages", len(cfg.Vantages)),
			obs.F("dests", len(cfg.Dests)),
			obs.F("epoch", gen.Epoch()),
		}
		if s.cfg.Tenant != "" {
			fields = append([]obs.Field{obs.F("tenant", s.cfg.Tenant)}, fields...)
		}
		j.Record(s.Net.Clk.Now(), "traffic", "attach", fields...)
	}
	return gen, nil
}
