// Package lifeguard is a reproduction of "LIFEGUARD: Practical Repair of
// Persistent Route Failures" (Katz-Bassett et al., SIGCOMM 2012): a system
// that locates long-lasting partial Internet outages — even asymmetric,
// unidirectional ones — and repairs them by steering traffic around the
// faulty AS with crafted BGP announcements (AS-path poisoning), without the
// faulty network's cooperation.
//
// The package wires together the full stack this repository implements from
// scratch: a deterministic discrete-event BGP internetwork simulator
// (topology, path-vector routing with Gao–Rexford policies, a hop-by-hop
// data plane with silent-failure injection, measurement primitives, a path
// atlas), the paper's failure-isolation and remediation engines, and a
// wire-level BGP-4 codec + session for speaking to real routers.
//
// Typical use:
//
//	net, _ := lifeguard.GenerateInternet(lifeguard.InternetConfig{Seed: 1})
//	sys := lifeguard.NewSystem(net, lifeguard.Config{
//		Origin: net.Gen.Stubs[0],
//		VPs:    ...,
//		Targets: ...,
//	})
//	sys.Start()
//	net.Clk.RunFor(2 * time.Hour) // virtual time; failures get repaired
package lifeguard

import (
	"fmt"
	"net/netip"

	"lifeguard/internal/bgp"
	"lifeguard/internal/chaos"
	"lifeguard/internal/dataplane"
	"lifeguard/internal/obs"
	"lifeguard/internal/probe"
	"lifeguard/internal/simclock"
	"lifeguard/internal/topo"
	"lifeguard/internal/topogen"
)

// Re-exported identifiers so downstream code can name the simulator's core
// types without reaching into internal packages.
type (
	// Addr is an IP address (net/netip.Addr re-exported for convenience).
	Addr = netip.Addr
	// ASN identifies an autonomous system.
	ASN = topo.ASN
	// RouterID identifies a router in a topology.
	RouterID = topo.RouterID
	// Path is an AS-level path, origin last.
	Path = topo.Path
	// Topology is the immutable internetwork under simulation.
	Topology = topo.Topology
	// TopologyBuilder assembles custom topologies.
	TopologyBuilder = topo.Builder
	// InternetConfig parameterizes synthetic Internet generation.
	InternetConfig = topogen.Config
	// FailureRule describes a silent data-plane failure.
	FailureRule = dataplane.Rule
	// FailureID names an injected failure.
	FailureID = dataplane.FailureID
	// BGPConfig tunes protocol dynamics (MRAI, propagation delay).
	BGPConfig = bgp.Config
	// ObsRegistry is the deterministic metrics registry (internal/obs).
	ObsRegistry = obs.Registry
	// ObsJournal is the sim-time event journal (internal/obs).
	ObsJournal = obs.Journal
	// OriginConfig controls how an AS announces one of its prefixes
	// (patterns, per-neighbor poisons, withholding, communities).
	OriginConfig = bgp.OriginConfig
	// ChaosScript is a scripted fault timeline (internal/chaos).
	ChaosScript = chaos.Script
	// ChaosStep is one scripted fault or invariant barrier.
	ChaosStep = chaos.Step
	// ChaosFault is one reversible injected failure.
	ChaosFault = chaos.Fault
	// ChaosOptions tunes a chaos run (converge budget, reach probes, obs).
	ChaosOptions = chaos.Options
	// ChaosReport summarizes a finished chaos run.
	ChaosReport = chaos.Report
	// ChaosViolation is one invariant breach found at a barrier.
	ChaosViolation = chaos.Violation
	// ChaosGenConfig parameterizes the seeded chaos script generator.
	ChaosGenConfig = chaos.GenConfig
	// ChaosReachProbe is a data-plane reachability assertion checked at
	// all-healed chaos barriers.
	ChaosReachProbe = chaos.ReachProbe
	// ChaosFaultDoc documents one fault keyword of the script vocabulary.
	ChaosFaultDoc = chaos.FaultDoc
)

// NewTopologyBuilder returns an empty topology builder.
func NewTopologyBuilder() *TopologyBuilder { return topo.NewBuilder() }

// Address-plan helpers re-exported from the topology layer.
var (
	// ProductionPrefix returns an AS's production /24.
	ProductionPrefix = topo.ProductionPrefix
	// SentinelPrefix returns an AS's sentinel /23.
	SentinelPrefix = topo.SentinelPrefix
	// ProductionAddr returns a host address inside the production prefix.
	ProductionAddr = topo.ProductionAddr
	// SentinelProbeAddr returns a host address in the sentinel's unused half.
	SentinelProbeAddr = topo.SentinelProbeAddr
	// Block returns an AS's /16 address block.
	Block = topo.Block
)

// Chaos subsystem entry points re-exported from internal/chaos.
var (
	// ParseChaosScript reads the text form of a fault timeline.
	ParseChaosScript = chaos.Parse
	// GenerateChaosScript samples a seeded, outage-calibrated timeline
	// for a topology.
	GenerateChaosScript = chaos.GenerateScript
	// ChaosVocabulary enumerates every fault keyword the script parser
	// accepts, sorted, with one-line docs (`lgchaos -list-faults`).
	ChaosVocabulary = chaos.Vocabulary
)

// Failure-rule constructors re-exported from the data plane.
var (
	// BlackholeAS drops all traffic forwarded by an AS.
	BlackholeAS = dataplane.BlackholeAS
	// BlackholeASTowards drops traffic an AS forwards toward a prefix —
	// the canonical unidirectional failure.
	BlackholeASTowards = dataplane.BlackholeASTowards
	// DropASLink drops traffic crossing a directed AS-level link.
	DropASLink = dataplane.DropASLink
	// BlackholeRouter drops all traffic through one router.
	BlackholeRouter = dataplane.BlackholeRouter
)

// Network bundles a simulated internetwork: topology, virtual clock, BGP
// engine, data plane, and prober. Build one with GenerateInternet (synthetic
// Internet) or AssembleNetwork (custom topology).
type Network struct {
	Top    *topo.Topology
	Clk    *simclock.Scheduler
	Eng    *bgp.Engine
	Plane  *dataplane.Plane
	Prober *probe.Prober
	// Gen describes the synthetic Internet's AS roles; nil for custom
	// topologies.
	Gen *topogen.Result
	// Obs is the metrics registry all of the network's subsystems report
	// into; nil when assembly ran uninstrumented.
	Obs *obs.Registry
	// Journal is the sim-time event journal; nil when disabled.
	Journal *obs.Journal
}

// NetworkOptions tunes network assembly.
type NetworkOptions struct {
	Seed int64
	BGP  bgp.Config
	// OriginateBlocks lists the ASes whose /16 blocks are announced at
	// start so their routers are reachable. Empty means every AS — fine
	// for small nets; large experiments should restrict it.
	OriginateBlocks []topo.ASN
	// SkipConverge leaves initial convergence to the caller.
	SkipConverge bool
	// Obs, when non-nil, instruments every subsystem of the assembled
	// network (BGP engine, data plane, prober, and any System wired over
	// it). Metrics are a pure function of the simulation, so enabling
	// them cannot change behaviour — only add one nil-check branch per
	// instrumented site.
	Obs *obs.Registry
	// Journal, when non-nil, receives sim-time event records from a
	// System wired over the network.
	Journal *obs.Journal
}

// GenerateInternet builds a synthetic Internet (see topogen) and assembles
// a converged Network over it.
func GenerateInternet(gencfg InternetConfig, opts ...NetworkOptions) (*Network, error) {
	res, err := topogen.Generate(gencfg)
	if err != nil {
		return nil, err
	}
	var o NetworkOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Seed == 0 {
		o.Seed = gencfg.Seed
	}
	n, err := AssembleNetwork(res.Top, o)
	if err != nil {
		return nil, err
	}
	n.Gen = res
	return n, nil
}

// AssembleNetwork builds the engine, data plane and prober over a finished
// topology, originates the requested blocks, and converges.
func AssembleNetwork(top *topo.Topology, o NetworkOptions) (*Network, error) {
	clk := simclock.New()
	cfg := o.BGP
	if cfg.Seed == 0 {
		cfg.Seed = o.Seed
	}
	if cfg.Obs == nil {
		cfg.Obs = o.Obs
	}
	eng := bgp.New(top, clk, cfg)
	blocks := o.OriginateBlocks
	if len(blocks) == 0 {
		blocks = top.ASNs()
	}
	for _, asn := range blocks {
		eng.Originate(asn, topo.Block(asn))
	}
	if !o.SkipConverge && !eng.Converge(200_000_000) {
		return nil, fmt.Errorf("lifeguard: initial BGP convergence did not complete")
	}
	pl := dataplane.New(top, eng)
	pl.Instrument(o.Obs)
	pr := probe.New(top, pl, clk, probe.Config{})
	pr.Instrument(o.Obs)
	return &Network{
		Top: top, Clk: clk, Eng: eng, Plane: pl,
		Prober:  pr,
		Obs:     o.Obs,
		Journal: o.Journal,
	}, nil
}

// Hub returns the hub (first) router of asn.
func (n *Network) Hub(asn ASN) RouterID { return n.Top.AS(asn).Routers[0] }

// RouterAddr returns the address of a router.
func (n *Network) RouterAddr(id RouterID) netip.Addr { return n.Top.Router(id).Addr }

// InjectFailure installs a silent data-plane failure.
func (n *Network) InjectFailure(r FailureRule) FailureID { return n.Plane.AddFailure(r) }

// HealFailure removes an injected failure.
func (n *Network) HealFailure(id FailureID) bool { return n.Plane.RemoveFailure(id) }

// Converge drains the BGP control plane (bounded); it reports success.
func (n *Network) Converge() bool { return n.Eng.Converge(200_000_000) }

// ChaosTarget exposes the network to the chaos fault-injection engine.
func (n *Network) ChaosTarget() *chaos.Target {
	return &chaos.Target{
		Top: n.Top, Clk: n.Clk, Eng: n.Eng, Plane: n.Plane,
		Journal: n.Journal,
	}
}

// RunChaos executes a fault timeline against the network and returns its
// report. Deterministic: the same network seed and script yield the same
// report bytes. See internal/chaos for the script language and invariants.
func (n *Network) RunChaos(s *ChaosScript, opts ChaosOptions) (*ChaosReport, error) {
	r, err := chaos.NewRunner(n.ChaosTarget(), s, opts)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// FailAdjacency cuts the link between adjacent ASes a and b completely:
// the BGP session drops (both sides withdraw, the Internet re-converges —
// a *visible* failure, unlike InjectFailure's silent ones) and the data
// plane stops carrying packets across it in either direction.
func (n *Network) FailAdjacency(a, b ASN) [2]FailureID {
	n.Eng.SetAdjacencyDown(a, b, true)
	return [2]FailureID{
		n.Plane.AddFailure(dataplane.DropASLink(a, b)),
		n.Plane.AddFailure(dataplane.DropASLink(b, a)),
	}
}

// HealAdjacency restores a link cut by FailAdjacency. It verifies the ids
// are live and actually the a–b link-cut pair — the two directed drop rules
// FailAdjacency installed, in either order — and reports false without
// touching anything on a mismatch (no partial heal), consistent with
// HealFailure's contract.
func (n *Network) HealAdjacency(a, b ASN, ids [2]FailureID) bool {
	matches := func(r FailureRule, from, to ASN) bool {
		return r == dataplane.DropASLink(from, to)
	}
	r0, ok0 := n.Plane.Failure(ids[0])
	r1, ok1 := n.Plane.Failure(ids[1])
	if !ok0 || !ok1 {
		return false
	}
	if !(matches(r0, a, b) && matches(r1, b, a)) &&
		!(matches(r0, b, a) && matches(r1, a, b)) {
		return false
	}
	n.Plane.RemoveFailure(ids[0])
	n.Plane.RemoveFailure(ids[1])
	n.Eng.SetAdjacencyDown(a, b, false)
	return true
}
