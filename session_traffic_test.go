package lifeguard_test

import (
	"strings"
	"testing"

	"lifeguard"
	"lifeguard/internal/obs"
)

// TestSessionAttachTraffic wires a flow population to a tenant session and
// checks the whole surface: config defaulting from the session's monitored
// targets, tenant-scoped metrics, journal records, and user-seconds-lost
// accounting reacting to a reverse-path fault on the shared plane.
func TestSessionAttachTraffic(t *testing.T) {
	n, err := lifeguard.GenerateInternet(
		lifeguard.InternetConfig{Seed: 5, NumTransit: 10, NumStub: 20},
		lifeguard.NetworkOptions{
			BGP:     fastBGP(),
			Obs:     obs.New(),
			Journal: obs.NewJournal(1 << 14),
		})
	if err != nil {
		t.Fatal(err)
	}
	origin := n.Gen.Stubs[0]
	targets := []lifeguard.Addr{
		n.RouterAddr(n.Hub(n.Gen.Stubs[5])),
		n.RouterAddr(n.Hub(n.Gen.Stubs[6])),
	}
	s := lifeguard.NewSession(n, lifeguard.SessionConfig{Config: lifeguard.Config{
		Origin:  origin,
		VPs:     []lifeguard.RouterID{n.Hub(origin)},
		Targets: targets,
	}})

	gen, err := s.AttachTraffic(lifeguard.TrafficConfig{Seed: 9, Flows: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Traffic != gen {
		t.Fatal("AttachTraffic did not keep the generator on the session")
	}
	if gen.Flows() != 5000 {
		t.Fatalf("population is %d flows, want 5000", gen.Flows())
	}

	epoch := func() lifeguard.TrafficEpochReport {
		n.Clk.RunFor(gen.Epoch())
		return gen.RunEpoch()
	}
	clean := epoch()
	if clean.Lost != 0 || clean.Availability() != 1 {
		t.Fatalf("healthy network lost %d flows", clean.Lost)
	}

	// A transit on the users' path to the origin silently drops everything
	// toward the origin's block: the defaulted population (users behind
	// the monitored targets, destination the production prefix) must
	// bleed user-seconds.
	rev := n.Eng.ASPathTo(n.Gen.Stubs[5], lifeguard.ProductionAddr(origin))
	if len(rev) < 2 {
		t.Fatalf("no transit path from vantage to origin: %v", rev)
	}
	fid := n.InjectFailure(lifeguard.BlackholeASTowards(rev[0], lifeguard.Block(origin)))
	broken := epoch()
	if broken.Lost == 0 || broken.UserSecondsLost == 0 {
		t.Fatalf("fault cost nothing: %+v", broken)
	}
	n.HealFailure(fid)
	healed := epoch()
	if healed.Lost != 0 {
		t.Fatalf("healed network still lost %d flows", healed.Lost)
	}

	// Tenant scoping: the metrics live in the session's obs partition
	// under its tenant label.
	snap := snapshotBytes(t, s)
	if !strings.Contains(snap, "lifeguard_traffic_flow_epochs_served_total") {
		t.Fatalf("session obs partition missing traffic counters:\n%s", snap)
	}
	if !strings.Contains(snap, s.Tenant()) {
		t.Fatalf("traffic metrics not scoped to tenant %q", s.Tenant())
	}

	// Journal surface: one attach record (tenant-tagged) and one epoch
	// record per closed epoch.
	attach, epochs := 0, 0
	for _, ev := range n.Journal.Events() {
		if ev.Subsystem != "traffic" {
			continue
		}
		switch ev.Kind {
		case "attach":
			attach++
			tagged := false
			for _, f := range ev.Fields {
				if f.Key == "tenant" && f.Value == s.Tenant() {
					tagged = true
				}
			}
			if !tagged {
				t.Fatalf("attach record not tagged with tenant: %+v", ev)
			}
		case "epoch":
			epochs++
		}
	}
	if attach != 1 || epochs != 3 {
		t.Fatalf("journal has %d attach and %d epoch records, want 1 and 3", attach, epochs)
	}
}

// TestSessionAttachTrafficValidates pins the error path: a target outside
// the address plan cannot default a vantage.
func TestSessionAttachTrafficValidates(t *testing.T) {
	n := fig2RigNetwork(t)
	s := lifeguard.NewSession(n, lifeguard.SessionConfig{Config: lifeguard.Config{
		Origin:  asO,
		VPs:     []lifeguard.RouterID{n.Hub(asO)},
		Targets: []lifeguard.Addr{lifeguard.ProductionAddr(asE)},
	}})
	if _, err := s.AttachTraffic(lifeguard.TrafficConfig{Flows: -1}); err == nil {
		t.Fatal("negative flow population accepted")
	}
	if s.Traffic != nil {
		t.Fatal("failed attach left a generator on the session")
	}
}
