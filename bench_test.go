package lifeguard_test

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation. Each iteration regenerates the artifact from the
// simulated internetwork; headline numbers are attached as custom benchmark
// metrics so `go test -bench . -benchmem` prints the measured values next
// to timing. Run a single one with e.g.
//
//	go test -bench BenchmarkFig6Convergence -benchtime 1x
//
// The textual reports come from `go run ./cmd/lgexp`.

import (
	"testing"
	"time"

	"lifeguard"
	"lifeguard/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports the given
// headline values as metrics.
func benchExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = e.Run(int64(i + 1))
	}
	b.StopTimer()
	for _, k := range metricKeys {
		if v, ok := last.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkFig1OutageDurations regenerates Figure 1 (outage-duration CDF vs
// share of total unreachability).
func BenchmarkFig1OutageDurations(b *testing.B) {
	benchExperiment(b, "fig1", "frac_events_le_10min", "unavail_share_gt_10min")
}

// BenchmarkFig5ResidualDuration regenerates Figure 5 (residual outage
// duration after X minutes).
func BenchmarkFig5ResidualDuration(b *testing.B) {
	benchExperiment(b, "fig5", "persist5_given_5min", "persist5_given_10min")
}

// BenchmarkSec22AltPaths regenerates the §2.2 spliced-alternate-path study.
func BenchmarkSec22AltPaths(b *testing.B) {
	benchExperiment(b, "alt", "frac_with_alternate", "frac_with_alternate_ge_1h")
}

// BenchmarkSec23ForwardDiversity regenerates the §2.3 provider-diversity
// study.
func BenchmarkSec23ForwardDiversity(b *testing.B) {
	benchExperiment(b, "fwd", "frac_forward_avoidable")
}

// BenchmarkTable1Efficacy regenerates the §5.1 poisoning-efficacy rows of
// Table 1 (testbed poisons, large-scale simulation, isolated failures).
func BenchmarkTable1Efficacy(b *testing.B) {
	benchExperiment(b, "efficacy",
		"frac_peers_found_alternate", "frac_sim_alternate", "frac_isolated_alternate")
}

// BenchmarkFig6Convergence regenerates Figure 6 and the §5.2 global
// convergence percentiles (prepend vs no-prepend).
func BenchmarkFig6Convergence(b *testing.B) {
	benchExperiment(b, "fig6",
		"prepend_nochange_frac_instant", "global_p50_prepend_s", "global_p50_noprepend_s")
}

// BenchmarkSec52Loss regenerates the §5.2 loss-during-convergence study.
func BenchmarkSec52Loss(b *testing.B) {
	benchExperiment(b, "loss", "frac_loss_under_2pct")
}

// BenchmarkSec52Selective regenerates the §5.2 selective-poisoning
// link-avoidance sweep.
func BenchmarkSec52Selective(b *testing.B) {
	benchExperiment(b, "selective", "frac_links_avoided")
}

// BenchmarkSec53Accuracy regenerates the §5.3 isolation-accuracy rows of
// Table 1.
func BenchmarkSec53Accuracy(b *testing.B) {
	benchExperiment(b, "accuracy", "frac_blame_correct", "frac_differs_from_traceroute")
}

// BenchmarkSec54Scalability regenerates the §5.4 overhead measurements.
func BenchmarkSec54Scalability(b *testing.B) {
	benchExperiment(b, "scale", "probes_per_isolation", "isolation_seconds")
}

// BenchmarkTable2UpdateLoad regenerates Table 2 (Internet-wide update load).
func BenchmarkTable2UpdateLoad(b *testing.B) {
	benchExperiment(b, "tab2", "load_I0.01_T0.5_d5", "load_I0.01_T0.5_d15")
}

// BenchmarkSec23Baselines compares the traditional route-control techniques
// against poisoning on remote reverse failures (§2.3 quantified).
func BenchmarkSec23Baselines(b *testing.B) {
	benchExperiment(b, "baselines", "frac_poisoning", "frac_prepending", "disrupt_poisoning")
}

// BenchmarkAblationThreshold sweeps the poison-maturity threshold (design
// choice behind the §4.2 five-minute rule).
func BenchmarkAblationThreshold(b *testing.B) {
	benchExperiment(b, "abl-threshold", "wasted_frac_5m0s", "avoided_5m0s")
}

// BenchmarkAblationPrecheck measures what the alternate-path precheck
// prevents.
func BenchmarkAblationPrecheck(b *testing.B) {
	benchExperiment(b, "abl-precheck", "frac_severed_without_precheck")
}

// BenchmarkAblationDampening sweeps unpoison pacing against RFC 2439
// dampening (why the paper spaced announcements 90 minutes).
func BenchmarkAblationDampening(b *testing.B) {
	benchExperiment(b, "abl-dampening", "frac_unreachable_5m0s", "frac_unreachable_1h30m0s")
}

// BenchmarkEndToEndRepair measures the full §6-style pipeline — detect,
// isolate, poison, recover — on the Fig. 2 network, reporting the virtual
// time from failure injection to restored reachability.
func BenchmarkEndToEndRepair(b *testing.B) {
	var totalRepair time.Duration
	for i := 0; i < b.N; i++ {
		n := buildFig2Bench(b, int64(i+1))
		target := n.RouterAddr(n.Hub(asE))
		sys := lifeguard.NewSystem(n, lifeguard.Config{
			Origin:  asO,
			VPs:     []lifeguard.RouterID{n.Hub(asO), n.Hub(asC)},
			Targets: []lifeguard.Addr{target},
		})
		sys.Start()
		n.Clk.RunFor(2 * time.Minute)
		failAt := n.Clk.Now()
		n.InjectFailure(lifeguard.BlackholeASTowards(asA, lifeguard.Block(asO)))
		n.Clk.RunFor(25 * time.Minute)
		recs := sys.EventsOfKind(lifeguard.EventRecovered)
		if len(recs) == 0 {
			b.Fatal("no recovery")
		}
		totalRepair += recs[0].At - failAt
	}
	b.ReportMetric(totalRepair.Minutes()/float64(b.N), "repair_minutes_virtual")
}

func buildFig2Bench(b *testing.B, seed int64) *lifeguard.Network {
	b.Helper()
	bld := lifeguard.NewTopologyBuilder()
	for _, asn := range []lifeguard.ASN{asO, asB, asA, asC, asD, asE, asF} {
		bld.AddAS(asn, "")
		bld.AddRouter(asn, "")
	}
	for _, r := range [][2]lifeguard.ASN{{asO, asB}, {asB, asA}, {asB, asC}, {asC, asD}, {asA, asE}, {asD, asE}, {asF, asA}} {
		bld.Provider(r[0], r[1])
		bld.ConnectAS(r[0], r[1])
	}
	top, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	n, err := lifeguard.AssembleNetwork(top, lifeguard.NetworkOptions{Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return n
}
