# LIFEGUARD reproduction — build, test, and static-analysis entry points.
#
# `make lint` is the gate CI enforces: the standard go vet passes plus the
# repo's own lglint analyzer suite (determinism & concurrency invariants;
# see internal/analysis and DESIGN.md §"Static analysis & invariants").

GO      ?= go
BIN     := bin
LGLINT  := $(BIN)/lglint

.PHONY: all build test lint race fuzz-smoke bench bench-smoke bench-all lglint lglint-bin clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lglint builds the vet tool; lglint-bin additionally prints its path so
# scripts can do: go vet -vettool=$$(make -s lglint-bin) ./...
lglint:
	@$(GO) build -o $(LGLINT) ./cmd/lglint

lglint-bin: lglint
	@echo $(LGLINT)

lint: lglint
	$(GO) vet ./...
	$(GO) vet -vettool=$(LGLINT) ./...

# The packages with real concurrency: the wire-level session FSM and the
# monitoring pipeline.
race:
	$(GO) test -race ./internal/bgp/session/... ./internal/monitor/...

# A quick fuzz pass over the BGP-4 wire codec; CI runs this on every push.
fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=30s ./internal/bgp/wire/

# bench is the perf-regression harness: it runs the engine-convergence and
# dataplane-forwarding benchmarks and refreshes BENCH_pr2.json (ns/op,
# allocs/op, packets/sec, plus deltas against the recorded baseline).
# bench-smoke is the 1-iteration variant CI runs; bench-all is a 1x pass
# over every benchmark in the repo.
bench:
	$(GO) run ./cmd/lgbench -benchtime 2s -out BENCH_pr2.json

bench-smoke:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/lgbench -benchtime 1x -out $(BIN)/BENCH_smoke.json

bench-all:
	$(GO) test -bench . -benchtime 1x ./...

clean:
	rm -rf $(BIN)
