# LIFEGUARD reproduction — build, test, and static-analysis entry points.
#
# `make lint` is the gate CI enforces: the standard go vet passes plus the
# repo's own lglint analyzer suite (determinism & concurrency invariants;
# see internal/analysis and DESIGN.md §"Static analysis & invariants").

GO      ?= go
BIN     := bin
LGLINT  := $(BIN)/lglint

.PHONY: all build test lint lint-fix-check lint-sarif race debug-test exp-smoke obs-smoke chaos-smoke hijack-smoke daemon-smoke traffic-smoke fuzz-smoke bench bench-smoke bench-all bench-scale bench-scale-smoke bench-traffic lglint lglint-bin clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lglint builds the vet tool; lglint-bin additionally prints its path so
# scripts can do: go vet -vettool=$$(make -s lglint-bin) ./...
lglint:
	@$(GO) build -o $(LGLINT) ./cmd/lglint

lglint-bin: lglint
	@echo $(LGLINT)

lint: lglint
	$(GO) vet ./...
	$(GO) vet -vettool=$(LGLINT) ./...

# lint-fix-check asserts the tree is clean under -fix: a dry run of the
# standalone driver must report no findings and print no pending edits —
# every fixable finding has been applied or carries a reasoned
# //lint:ignore. Exit 1 from the driver means findings; a non-empty diff
# means un-applied fixes.
lint-fix-check: lglint
	@mkdir -p $(BIN)
	@if ! $(LGLINT) -fix -dry-run ./... >$(BIN)/lglint_fix.diff; then \
		cat $(BIN)/lglint_fix.diff; \
		echo "lint-fix-check: findings on a supposedly clean tree"; exit 1; \
	fi
	@if [ -s $(BIN)/lglint_fix.diff ]; then \
		cat $(BIN)/lglint_fix.diff; \
		echo "lint-fix-check: pending edits on a supposedly clean tree"; exit 1; \
	fi
	@echo "lint-fix-check: no pending edits"

# lint-sarif renders the suite's findings as SARIF 2.1.0 for code-scanning
# upload. Findings (exit 1) still produce a valid file — uploading them is
# how they surface inline on PRs; `make lint` stays the hard gate. Only a
# load/usage error (exit 2) fails the target.
lint-sarif: lglint
	@mkdir -p $(BIN)
	@$(LGLINT) -sarif ./... >$(BIN)/lglint.sarif; st=$$?; \
	if [ $$st -ge 2 ]; then exit $$st; fi
	@echo "lint-sarif: wrote $(BIN)/lglint.sarif"

# The packages with real concurrency: the sharded engine's barrier workers,
# the wire-level session FSM, the monitoring pipeline, and the parallel
# trial runner (plus the experiments that fan out on it). The dataplane
# rides along to hold ForwardBatch to the intraPath aliasing contract
# (cached paths are shared, read-only) under the detector.
race:
	$(GO) test -race ./internal/bgp/... ./internal/monitor/... ./internal/runner/... ./internal/experiments/... ./internal/dataplane/...

# debug-test reruns the simulation-bearing packages with the simclockdebug
# ownership assertion compiled in: any scheduler touched from two
# goroutines panics instead of silently corrupting a run.
debug-test:
	$(GO) test -tags simclockdebug ./internal/simclock/... ./internal/runner/... ./internal/experiments/...

# exp-smoke proves the runner's determinism contract end to end: the lgexp
# report for a fixed seed must be byte-identical sequentially and on 4
# workers. Chatter goes to stderr, so stdout diffs clean.
exp-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lgexp ./cmd/lgexp
	$(BIN)/lgexp -exp fig1,abl-threshold,abl-dampening -seeds 2 -parallel 1 >$(BIN)/exp_seq.txt
	$(BIN)/lgexp -exp fig1,abl-threshold,abl-dampening -seeds 2 -parallel 4 >$(BIN)/exp_par.txt
	diff $(BIN)/exp_seq.txt $(BIN)/exp_par.txt
	@echo "exp-smoke: sequential and parallel reports are byte-identical"

# obs-smoke proves the observability subsystem is determinism-neutral end
# to end: the lgexp report is byte-identical with instrumentation off and
# on (-obs), and the merged metrics snapshot is byte-identical across
# parallelism levels (per-trial registries merge in trial-index order).
obs-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lgexp ./cmd/lgexp
	$(BIN)/lgexp -exp abl-dampening,abl-precheck -parallel 1 >$(BIN)/obs_off.txt
	$(BIN)/lgexp -exp abl-dampening,abl-precheck -parallel 1 -obs $(BIN)/obs_seq.json >$(BIN)/obs_seq.txt
	$(BIN)/lgexp -exp abl-dampening,abl-precheck -parallel 4 -obs $(BIN)/obs_par.json >$(BIN)/obs_par.txt
	diff $(BIN)/obs_off.txt $(BIN)/obs_seq.txt
	diff $(BIN)/obs_seq.txt $(BIN)/obs_par.txt
	diff $(BIN)/obs_seq.json $(BIN)/obs_par.json
	@grep -q lifeguard_bgp_updates_sent_total $(BIN)/obs_seq.json
	@echo "obs-smoke: report unchanged by -obs; snapshot byte-identical across parallelism"

# chaos-smoke proves the fault-injection subsystem's contracts end to end:
# a fixed-seed lgchaos sweep must uphold every invariant (the CLI exits 3
# on violations, failing the target) and write byte-identical reports and
# metrics snapshots sequentially and on 4 workers.
chaos-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lgchaos ./cmd/lgchaos
	$(BIN)/lgchaos -seed 3 -trials 3 -faults 6 -intensity 1.5 -parallel 1 -obs $(BIN)/chaos_seq.json >$(BIN)/chaos_seq.txt
	$(BIN)/lgchaos -seed 3 -trials 3 -faults 6 -intensity 1.5 -parallel 4 -obs $(BIN)/chaos_par.json >$(BIN)/chaos_par.txt
	diff $(BIN)/chaos_seq.txt $(BIN)/chaos_par.txt
	diff $(BIN)/chaos_seq.json $(BIN)/chaos_par.json
	@grep -q lifeguard_chaos_faults_injected_total $(BIN)/chaos_seq.json
	@echo "chaos-smoke: zero violations; reports and snapshots byte-identical across parallelism"

# hijack-smoke proves the hijack plane end to end: a scripted sub-prefix
# hijack against a defended session must be detected, mitigated, and
# cleared with zero invariant violations (lgchaos -hijack exits 3 on a
# missing pipeline stage), and the report must be byte-identical
# sequentially and on 4 workers.
hijack-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lgchaos ./cmd/lgchaos
	$(BIN)/lgchaos -hijack -seed 1 -trials 2 -parallel 1 >$(BIN)/hijack_seq.txt
	$(BIN)/lgchaos -hijack -seed 1 -trials 2 -parallel 4 >$(BIN)/hijack_par.txt
	diff $(BIN)/hijack_seq.txt $(BIN)/hijack_par.txt
	@grep -q 'detected  sub-prefix' $(BIN)/hijack_seq.txt
	@grep -q 'mitigated announced=' $(BIN)/hijack_seq.txt
	@grep -q 'cleared   alarm down' $(BIN)/hijack_seq.txt
	@echo "hijack-smoke: detected, mitigated, cleared; zero violations; reports byte-identical across parallelism"

# daemon-smoke proves the long-running service contract end to end: a
# multi-tenant lifeguardd with the metrics endpoint up must answer
# /healthz and /metrics while simulating, then exit 0 on SIGTERM with the
# final JSON snapshot on stdout (the documented shutdown contract; the
# signal-path details are covered by cmd/lifeguardd's own tests).
daemon-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lifeguardd ./cmd/lifeguardd
	@rm -f $(BIN)/daemon_smoke.out
	$(BIN)/lifeguardd -tenants 2 -hours 1000000 -failures 2 -http 127.0.0.1:18911 >$(BIN)/daemon_smoke.out & \
	pid=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:18911/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -sf http://127.0.0.1:18911/healthz || { kill $$pid; exit 1; }; \
	curl -sf http://127.0.0.1:18911/metrics | grep -q 'lifeguard_monitor_ping_rounds_total{tenant=' || { kill $$pid; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid || { echo "daemon-smoke: nonzero exit on SIGTERM"; exit 1; }
	@grep -q '"metrics"' $(BIN)/daemon_smoke.out || { echo "daemon-smoke: no final snapshot on stdout"; exit 1; }
	@echo "daemon-smoke: healthz+metrics served; clean SIGTERM exit with final snapshot"

# traffic-smoke proves the traffic-at-scale dataplane's contracts end to
# end: the user-seconds-lost experiment (a small flow population sharded
# over destinations) must report zero invariant violations and produce a
# byte-identical report sequentially and on 4 workers.
traffic-smoke:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lgexp ./cmd/lgexp
	$(BIN)/lgexp -exp traffic -seed 1 -parallel 1 >$(BIN)/traffic_seq.txt
	$(BIN)/lgexp -exp traffic -seed 1 -parallel 4 >$(BIN)/traffic_par.txt
	diff $(BIN)/traffic_seq.txt $(BIN)/traffic_par.txt
	@grep -q 'violations_total *0\.0000' $(BIN)/traffic_seq.txt || { echo "traffic-smoke: invariant violations"; exit 1; }
	@grep -q 'user_seconds_saved_frac' $(BIN)/traffic_seq.txt
	@echo "traffic-smoke: zero violations; report byte-identical across parallelism"

# A quick fuzz pass over the BGP-4 wire codec; CI runs this on every push.
fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=30s ./internal/bgp/wire/

# bench is the perf-regression harness: it runs the engine-convergence and
# dataplane-forwarding benchmarks plus the experiment-suite wall-clock
# timing (sequential vs parallel RunSuite, and instrumented vs
# uninstrumented obs overhead) and refreshes BENCH_pr4.json (ns/op,
# allocs/op, packets/sec, suite speedup, obs overhead, plus deltas against
# the recorded baseline). bench-smoke is the 1-iteration variant CI runs;
# bench-all is a 1x pass over every benchmark in the repo.
bench:
	$(GO) run ./cmd/lgbench -benchtime 2s -out BENCH_pr4.json

bench-smoke:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/lgbench -benchtime 1x -suite=false -out $(BIN)/BENCH_smoke.json

bench-all:
	$(GO) test -bench . -benchtime 1x ./...

# bench-scale measures Internet-scale convergence (200/2k/10k ASes, each
# case in a fresh subprocess so peak-RSS readings are isolated) and
# refreshes BENCH_pr7.json. bench-scale-smoke is the CI gate: one 2k-AS
# full-table convergence under a wall-clock budget plus a worker-count
# determinism diff (exit nonzero on either violation).
bench-scale:
	$(GO) run ./cmd/lgbench -scale -scale-out BENCH_pr7.json

bench-scale-smoke:
	$(GO) run ./cmd/lgbench -scale-smoke

# bench-traffic measures the traffic-at-scale dataplane (1M modelled flows
# through the batched and single-packet forwarding paths, plus the
# user-seconds-lost experiment) and refreshes BENCH_pr10.json.
bench-traffic:
	$(GO) run ./cmd/lgbench -traffic -traffic-out BENCH_pr10.json

clean:
	rm -rf $(BIN)
